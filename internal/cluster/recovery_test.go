package cluster

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"persona/internal/agd"
	"persona/internal/storage"
	"persona/internal/testutil"
)

// fastDetect is a failure-detector tuning quick enough for tests: dead
// workers are noticed in a few hundred milliseconds.
var fastDetect = ServerOptions{
	LeaseTimeout: 10 * time.Second,
	BeatTimeout:  300 * time.Millisecond,
	MaxAttempts:  4,
}

// TestManifestServerReassignsDeadWorkerLease: a tracked worker that leases a
// chunk and goes silent has its chunk re-dealt to the next asker.
func TestManifestServerReassignsDeadWorkerLease(t *testing.T) {
	srv, err := NewManifestServerOpts(1, ServerOptions{
		LeaseTimeout: 10 * time.Second, BeatTimeout: 50 * time.Millisecond, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dead, err := DialManifestWorker(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	idx, ok, err := dead.Next()
	if err != nil || !ok || idx != 0 {
		t.Fatalf("dead worker lease = %d, %v, %v", idx, ok, err)
	}
	// Worker 0 never beats or acks: past BeatTimeout its lease is reclaimable.

	alive, err := DialManifestWorker(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	idx, ok, err = alive.Next() // polls through WAIT until the lease expires
	if err != nil || !ok || idx != 0 {
		t.Fatalf("survivor lease = %d, %v, %v", idx, ok, err)
	}
	if srv.Reassigned() != 1 {
		t.Fatalf("Reassigned = %d, want 1", srv.Reassigned())
	}
	if err := alive.Ack(0); err != nil {
		t.Fatal(err)
	}
	if !srv.AllDone() {
		t.Fatal("run not complete after survivor's ack")
	}
	// Duplicate completion (the straggler finished after all) is accepted.
	if err := dead.Ack(0); err != nil {
		t.Fatal(err)
	}
	if !srv.AllDone() {
		t.Fatal("duplicate ack broke completion")
	}
}

// TestManifestServerAbortsAfterMaxAttempts: a chunk that keeps failing its
// lease aborts the run instead of spinning forever.
func TestManifestServerAbortsAfterMaxAttempts(t *testing.T) {
	srv, err := NewManifestServerOpts(1, ServerOptions{
		LeaseTimeout: 10 * time.Millisecond, BeatTimeout: 10 * time.Second, MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialManifestWorker(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for lease := 0; lease < 2; lease++ {
		if _, ok, err := client.Next(); err != nil || !ok {
			t.Fatalf("lease %d: ok=%v err=%v", lease, ok, err)
		}
		time.Sleep(20 * time.Millisecond) // blow the lease deadline
	}
	_, _, err = client.Next()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if srv.AllDone() {
		t.Fatal("aborted run reported AllDone")
	}
}

// resultsBlobs collects the results-column blobs of a dataset, by name.
func resultsBlobs(t *testing.T, store storage.Store, dataset string) map[string][]byte {
	t.Helper()
	ds, err := agd.Open(store, dataset)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for i := range ds.Manifest.Chunks {
		name := ds.Manifest.ChunkBlobPath(i, agd.ColResults)
		data, err := store.Get(name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		out[name] = data
	}
	return out
}

var recoveryFixture = testutil.Config{
	GenomeSize: 120_000, NumReads: 600, ReadLen: 80, ChunkSize: 75, Seed: 91, SkipAlign: true,
}

// TestAlignSurvivesWorkerDeath: one of two workers dies mid-run; the run
// completes on the survivor, the report records the degradation and the
// reassignments, and the output is byte-identical to a fault-free run.
func TestAlignSurvivesWorkerDeath(t *testing.T) {
	clean := agd.NewMemStore()
	f := testutil.Build(t, clean, "ds", recoveryFixture)
	if _, _, err := Align(context.Background(), clean, "ds", f.Index, Config{Nodes: 1, ThreadsPerNode: 2}); err != nil {
		t.Fatal(err)
	}
	want := resultsBlobs(t, clean, "ds")

	store := agd.NewMemStore()
	f2 := testutil.Build(t, store, "ds", recoveryFixture)
	report, m, err := Align(context.Background(), store, "ds", f2.Index, Config{
		Nodes: 2, ThreadsPerNode: 2, Prefetch: 2,
		Lease: fastDetect.LeaseTimeout, HeartbeatTimeout: fastDetect.BeatTimeout, MaxChunkAttempts: fastDetect.MaxAttempts,
		NodeFaults: map[int]int{0: 1}, // node 0 dies after one chunk
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("results column not registered")
	}
	if !report.Degraded || report.FailedNodes != 1 {
		t.Fatalf("Degraded=%v FailedNodes=%d, want a degraded 1-failure run", report.Degraded, report.FailedNodes)
	}
	if report.Reassigned < 1 {
		t.Fatalf("Reassigned = %d, want >= 1", report.Reassigned)
	}
	var dead *NodeReport
	for i := range report.Nodes {
		if report.Nodes[i].Failed {
			dead = &report.Nodes[i]
		}
	}
	if dead == nil || dead.Node != 0 || !strings.Contains(dead.Err, "node death") {
		t.Fatalf("failed node report = %+v", dead)
	}

	got := resultsBlobs(t, store, "ds")
	if len(got) != len(want) {
		t.Fatalf("results chunks = %d, want %d", len(got), len(want))
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Fatalf("results blob %s differs from fault-free run", name)
		}
	}
}

// TestAlignAllWorkersDead: a run whose every worker dies fails cleanly.
func TestAlignAllWorkersDead(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", recoveryFixture)
	_, _, err := Align(context.Background(), store, "ds", f.Index, Config{
		Nodes: 2, ThreadsPerNode: 2,
		Lease: fastDetect.LeaseTimeout, HeartbeatTimeout: fastDetect.BeatTimeout,
		NodeFaults: map[int]int{0: 0, 1: 0},
	})
	if err == nil || !strings.Contains(err.Error(), "all 2 nodes failed") {
		t.Fatalf("err = %v, want all-nodes-failed", err)
	}
}

// TestAlignUnderInjectedReadFaults: the full distributed run, with >=10% of
// reads failing transiently, completes byte-identical to the fault-free run
// when the store is resilience-wrapped.
func TestAlignUnderInjectedReadFaults(t *testing.T) {
	clean := agd.NewMemStore()
	f := testutil.Build(t, clean, "ds", recoveryFixture)
	if _, _, err := Align(context.Background(), clean, "ds", f.Index, Config{Nodes: 1, ThreadsPerNode: 2}); err != nil {
		t.Fatal(err)
	}
	want := resultsBlobs(t, clean, "ds")

	inner := agd.NewMemStore()
	f2 := testutil.Build(t, inner, "ds", recoveryFixture)
	faulty := storage.NewFaultStore(inner, storage.FaultPolicy{
		Seed:   17,
		Reads:  storage.OpFaults{ErrProb: 0.15, LatencyProb: 0.1, Latency: time.Millisecond},
		Writes: storage.OpFaults{ErrProb: 0.1},
	})
	defer faulty.Close()
	resilient := storage.NewRetryStore(faulty, storage.RetryPolicy{
		MaxAttempts: 8, BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond,
	})

	report, m, err := Align(context.Background(), resilient, "ds", f2.Index, Config{Nodes: 2, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("results column not registered")
	}
	if report.Degraded {
		t.Fatal("transient faults should not degrade the run")
	}
	if faulty.Stats().InjectedErrors == 0 {
		t.Fatal("fault store injected nothing; the test is vacuous")
	}
	if resilient.RetryStats().Retries == 0 {
		t.Fatal("no retries recorded; the resilience layer was bypassed")
	}

	got := resultsBlobs(t, inner, "ds")
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Fatalf("results blob %s differs from fault-free run", name)
		}
	}
}

// TestAlignCorruptChunkFailsClean: a corrupted bases chunk must fail the run
// with a classified permanent error naming the chunk — never produce output.
func TestAlignCorruptChunkFailsClean(t *testing.T) {
	inner := agd.NewMemStore()
	f := testutil.Build(t, inner, "ds", recoveryFixture)
	ds, err := agd.Open(inner, "ds")
	if err != nil {
		t.Fatal(err)
	}
	target := ds.Manifest.ChunkBlobPath(2, agd.ColBases)
	faulty := storage.NewFaultStore(inner, storage.FaultPolicy{
		Seed: 23,
		Keys: []storage.KeyFaults{{Substr: target, Reads: storage.OpFaults{CorruptProb: 1}}},
	})
	defer faulty.Close()
	resilient := storage.NewRetryStore(faulty, storage.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 200 * time.Microsecond,
	})

	_, _, err = Align(context.Background(), resilient, "ds", f.Index, Config{Nodes: 2, ThreadsPerNode: 2})
	if err == nil {
		t.Fatal("aligning a corrupt chunk succeeded")
	}
	if !errors.Is(err, agd.ErrCorrupt) {
		t.Fatalf("err = %v, want a classified corruption error", err)
	}
	if !strings.Contains(err.Error(), target) {
		t.Fatalf("err = %v, does not name the corrupt chunk %s", err, target)
	}
	m2, err := agd.Open(inner, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Manifest.HasColumn(agd.ColResults) {
		t.Fatal("failed run registered a results column")
	}
}
