// Package agdsort sorts AGD datasets with an external merge sort (§4.3 of
// the paper): several chunks at a time are sorted and merged into temporary
// "superchunks"; a final merge stage streams the superchunks into the
// sorted output dataset. Datasets can be sorted by aligned location or by
// read ID (metadata), the two orders downstream tools need.
//
// The sort never materializes per-record objects: each superchunk batch
// stages its columns in shared agd.RecordArenas (contiguous buffers + offset
// indexes) and sorts a compact array of packed {key, row} entries with an
// LSD radix sort over the key bytes that actually vary. Phase 2 is a
// range-partitioned parallel merge (the sample-sort idiom): splitter keys
// partition the sorted runs into independent key ranges, one merge per
// range, each writing its own span of output chunks — so the merge uses the
// same cores phase 1 does, with byte-identical output to the serial merge.
package agdsort

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"persona/internal/agd"
)

// Key selects the sort order.
type Key int

const (
	// ByLocation sorts by aligned genome location (requires a results
	// column). Unmapped reads sort last.
	ByLocation Key = iota
	// ByMetadata sorts lexicographically by read ID.
	ByMetadata
)

func (k Key) String() string {
	if k == ByLocation {
		return "location"
	}
	return "metadata"
}

// unmappedKey sorts unmapped reads after every mapped location.
const unmappedKey = uint64(1) << 62

// Options configures a sort.
type Options struct {
	// By selects the sort key.
	By Key
	// ChunksPerSuperchunk is how many input chunks are loaded, sorted and
	// merged into each temporary superchunk (default 8) — the knob that
	// trades memory for merge fan-in.
	ChunksPerSuperchunk int
	// OutputName names the sorted dataset; default "<name>.sorted".
	OutputName string
	// OutputChunkSize is records per output chunk; default: same as input
	// manifest's first chunk.
	OutputChunkSize int
	// MergeShards is the parallelism of the phase-2 merge: the sorted runs
	// are range-partitioned by sampled splitter keys into this many
	// independent merges, each emitting its own span of output chunks.
	// 0 derives from GOMAXPROCS; 1 selects the serial heap merge. Output
	// bytes are identical at every setting.
	MergeShards int
	// TempPrefix is where phase-1 spill blobs (superchunks) go for streamed
	// sorts (SortStream); default "agdsort.stream/tmp". Concurrent streamed
	// sorts against one store must use distinct prefixes. Dataset sorts
	// ignore it and spill under "<OutputName>/tmp".
	TempPrefix string
	// Pipelining (SortStream only) is how many merged output groups may be
	// in flight at once. ≤ 1 keeps the serial pull contract (groups build
	// into reused builders, valid until the next group); > 1 draws builders
	// from a bounded pool of that size, so a pumped edge can queue groups
	// that stay valid until Release.
	Pipelining int
	// SpillDecider chooses, per spilled superchunk run, whether the blob is
	// compressed, given its raw payload size — typically a
	// tco.SpillPolicy.Decide closure fed with the store's measured read
	// profile. It also returns a short reason tag for reporting. Nil spills
	// raw (the right call on local stores).
	SpillDecider func(runBytes int64) (agd.Compression, string)
	// Spill, when non-nil, accumulates per-run spill accounting for the
	// pipeline report.
	Spill *SpillStats
}

// Sort externally sorts a dataset and writes a new sorted dataset,
// returning its manifest. Cancellation and deadline of ctx are checked per
// chunk in both phases.
func Sort(ctx context.Context, store agd.BlobStore, name string, opts Options) (*agd.Manifest, error) {
	ds, err := agd.Open(store, name)
	if err != nil {
		return nil, err
	}
	return SortDataset(ctx, ds, opts)
}

// SortDataset is Sort over an already-open dataset.
func SortDataset(ctx context.Context, ds *agd.Dataset, opts Options) (*agd.Manifest, error) {
	m := ds.Manifest
	if opts.By == ByLocation && !m.HasColumn(agd.ColResults) {
		return nil, fmt.Errorf("agdsort: dataset %q has no results column to sort by", m.Name)
	}
	if opts.By == ByMetadata && !m.HasColumn(agd.ColMetadata) {
		return nil, fmt.Errorf("agdsort: dataset %q has no metadata column", m.Name)
	}
	if opts.ChunksPerSuperchunk <= 0 {
		opts.ChunksPerSuperchunk = 8
	}
	if opts.OutputName == "" {
		opts.OutputName = m.Name + ".sorted"
	}
	if opts.OutputChunkSize <= 0 {
		if len(m.Chunks) > 0 {
			opts.OutputChunkSize = int(m.Chunks[0].Records)
		} else {
			opts.OutputChunkSize = agd.DefaultChunkSize
		}
	}
	keyCol := keyColumn(m.Columns, opts.By)
	if keyCol < 0 {
		return nil, fmt.Errorf("agdsort: key column missing")
	}
	store := ds.Store()

	// Phase 1: produce sorted superchunks. Batches are independent, so
	// they run in parallel across the machine's cores — the sort is where
	// Persona's 48-thread servers earn the Table 2 advantage.
	numBatches := (len(m.Chunks) + opts.ChunksPerSuperchunk - 1) / opts.ChunksPerSuperchunk
	superNames := make([]string, numBatches)
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	errs := make(chan error, numBatches)
	for b := 0; b < numBatches; b++ {
		superNames[b] = fmt.Sprintf("%s/tmp/super-%06d", opts.OutputName, b)
		start := b * opts.ChunksPerSuperchunk
		end := start + opts.ChunksPerSuperchunk
		if end > len(m.Chunks) {
			end = len(m.Chunks)
		}
		if err := ctx.Err(); err != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(b, start, end int) {
			defer wg.Done()
			defer func() { <-sem }()
			cols, keys, err := stageRun(ctx, ds, start, end, keyCol, opts.By)
			if err != nil {
				errs <- err
				return
			}
			sortKeys(cols[keyCol], keys, opts.By)
			if err := writeSuperchunk(store, superNames[b], cols, keys, &opts); err != nil {
				errs <- err
			}
		}(b, start, end)
	}
	wg.Wait()
	// On any failure (including cancellation) the spilled superchunks must
	// not outlive the call: delete whatever phase 1 managed to write.
	dropTemps := func() {
		for _, sn := range superNames {
			store.Delete(sn)
		}
	}
	select {
	case err := <-errs:
		dropTemps()
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		dropTemps()
		return nil, err
	}

	// Phase 2: range-partitioned merge of superchunks into the output
	// dataset (see merge.go).
	manifest, err := mergeSuperchunks(ctx, store, superNames, ds, keyCol, opts)
	if err != nil {
		dropTemps()
		return nil, err
	}
	// Drop temporaries.
	for _, sn := range superNames {
		if err := store.Delete(sn); err != nil {
			return nil, err
		}
	}
	return manifest, nil
}

// keyColumn locates the column the sort key is derived from.
func keyColumn(columns []string, by Key) int {
	want := agd.ColResults
	if by == ByMetadata {
		want = agd.ColMetadata
	}
	for i, name := range columns {
		if name == want {
			return i
		}
	}
	return -1
}

// sortEntry is one row's packed sort key: the 64-bit primary key (location,
// or the metadata's big-endian 8-byte prefix) plus the row's index into the
// staging arenas. Sorting moves these 12-byte entries, never record bytes.
type sortEntry struct {
	key uint64
	row uint32
}

// loadPrefetch is the chunk-fetch window of the run-staging stream: each
// superchunk batch keeps this many chunks' column blobs in flight, so the
// next row group's fetch overlaps with key extraction over the current one.
const loadPrefetch = 4

// stageRun copies chunks [start, end) into per-column record arenas and
// extracts one packed sort entry per row. Arena staging copies each column
// chunk once (bulk, via AppendChunk) and allocates nothing per record.
func stageRun(ctx context.Context, ds *agd.Dataset, start, end, keyCol int, by Key) ([]*agd.RecordArena, []sortEntry, error) {
	m := ds.Manifest
	stream, err := ds.Stream(agd.StreamOptions{
		Start: start, End: end, Prefetch: loadPrefetch,
	})
	if err != nil {
		return nil, nil, err
	}
	defer stream.Close()
	cols := make([]*agd.RecordArena, len(m.Columns))
	numRows := 0
	for c := start; c < end; c++ {
		numRows += int(m.Chunks[c].Records)
	}
	for i := range cols {
		cols[i] = agd.NewRecordArena(0, numRows)
	}
	keys := make([]sortEntry, 0, numRows)
	for {
		sc, err := stream.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		// The stream validates every column chunk's record count against the
		// manifest, so the columns are known row-aligned here.
		chunks := sc.Chunks()
		keys, err = stageGroup(cols, keys, chunks, keyCol, by)
		if err != nil {
			return nil, nil, err
		}
	}
	return cols, keys, nil
}

// stageGroup bulk-appends one row group's column chunks into the staging
// arenas and extracts its packed sort entries — shared by the dataset and
// stream staging paths.
func stageGroup(cols []*agd.RecordArena, keys []sortEntry, chunks []*agd.Chunk, keyCol int, by Key) ([]sortEntry, error) {
	n := chunks[0].NumRecords()
	for col, c := range chunks {
		cols[col].AppendChunk(c)
	}
	keyChunk := chunks[keyCol]
	base := uint32(len(keys))
	for r := 0; r < n; r++ {
		rec, err := keyChunk.Record(r)
		if err != nil {
			return keys, err
		}
		k, err := packKey(rec, by)
		if err != nil {
			return keys, err
		}
		keys = append(keys, sortEntry{key: k, row: base + uint32(r)})
	}
	return keys, nil
}

// packKey derives a row's 64-bit primary key from its key-column record.
func packKey(rec []byte, by Key) (uint64, error) {
	if by == ByLocation {
		v, err := agd.DecodeResultView(rec)
		if err != nil {
			return 0, err
		}
		if v.IsUnmapped() {
			return unmappedKey, nil
		}
		return uint64(v.Location), nil
	}
	return prefixKey(rec), nil
}

// prefixKey packs up to 8 leading bytes big-endian, so uint64 comparison
// orders like bytes.Compare on the prefix; ties fall back to the full bytes.
func prefixKey(b []byte) uint64 {
	var k uint64
	n := len(b)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		k |= uint64(b[i]) << (56 - 8*i)
	}
	return k
}

// writeSuperchunk encodes the sorted rows into one temporary blob, reading
// fields straight from the staging arenas: each record is the concatenation
// of uvarint-length-prefixed fields. By default temporaries are stored
// uncompressed — they are deleted right after the merge, and on a local
// store paying gzip twice on data that lives for seconds would only burn
// the cores the merge needs. On remote stores opts.SpillDecider can flip
// that per run when transfer time dominates (the merge's DecodeChunk reads
// either encoding transparently via the blob header).
func writeSuperchunk(store agd.BlobStore, name string, cols []*agd.RecordArena, keys []sortEntry, opts *Options) error {
	b := agd.NewChunkBuilder(agd.TypeRaw, 0)
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range keys {
		buf = buf[:0]
		for _, col := range cols {
			f := col.Record(int(e.row))
			n := binary.PutUvarint(tmp[:], uint64(len(f)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, f...)
		}
		b.Append(buf)
	}
	c := b.Chunk()
	raw := int64(len(c.Data))
	comp, reason := agd.CompressNone, "default-raw"
	if opts.SpillDecider != nil {
		comp, reason = opts.SpillDecider(raw)
	}
	blob, err := agd.EncodeChunk(c, comp)
	if err != nil {
		return err
	}
	if err := store.Put(name, blob); err != nil {
		return err
	}
	opts.Spill.record(raw, int64(len(blob)), comp, reason)
	return nil
}
