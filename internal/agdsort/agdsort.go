// Package agdsort sorts AGD datasets with an external merge sort (§4.3 of
// the paper): several chunks at a time are sorted and merged into temporary
// "superchunks"; a final merge stage streams the superchunks into the
// sorted output dataset. Datasets can be sorted by aligned location or by
// read ID (metadata), the two orders downstream tools need.
//
// The sort never materializes per-record objects: each superchunk batch
// stages its columns in shared agd.RecordArenas (contiguous buffers + offset
// indexes), sorts a compact array of packed {key, row} entries, and the
// k-way merge runs a hand-rolled heap of superchunk iterators with reused
// field scratch — the whole record path is allocation-free in steady state
// (the AGD thesis of §3: records are slices of big buffers, not objects).
package agdsort

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"slices"
	"sync"

	"persona/internal/agd"
)

// Key selects the sort order.
type Key int

const (
	// ByLocation sorts by aligned genome location (requires a results
	// column). Unmapped reads sort last.
	ByLocation Key = iota
	// ByMetadata sorts lexicographically by read ID.
	ByMetadata
)

func (k Key) String() string {
	if k == ByLocation {
		return "location"
	}
	return "metadata"
}

// unmappedKey sorts unmapped reads after every mapped location.
const unmappedKey = uint64(1) << 62

// Options configures a sort.
type Options struct {
	// By selects the sort key.
	By Key
	// ChunksPerSuperchunk is how many input chunks are loaded, sorted and
	// merged into each temporary superchunk (default 8) — the knob that
	// trades memory for merge fan-in.
	ChunksPerSuperchunk int
	// OutputName names the sorted dataset; default "<name>.sorted".
	OutputName string
	// OutputChunkSize is records per output chunk; default: same as input
	// manifest's first chunk.
	OutputChunkSize int
}

// Sort externally sorts a dataset and writes a new sorted dataset,
// returning its manifest.
func Sort(store agd.BlobStore, name string, opts Options) (*agd.Manifest, error) {
	ds, err := agd.Open(store, name)
	if err != nil {
		return nil, err
	}
	return SortDataset(ds, opts)
}

// SortDataset is Sort over an already-open dataset.
func SortDataset(ds *agd.Dataset, opts Options) (*agd.Manifest, error) {
	m := ds.Manifest
	if opts.By == ByLocation && !m.HasColumn(agd.ColResults) {
		return nil, fmt.Errorf("agdsort: dataset %q has no results column to sort by", m.Name)
	}
	if opts.By == ByMetadata && !m.HasColumn(agd.ColMetadata) {
		return nil, fmt.Errorf("agdsort: dataset %q has no metadata column", m.Name)
	}
	if opts.ChunksPerSuperchunk <= 0 {
		opts.ChunksPerSuperchunk = 8
	}
	if opts.OutputName == "" {
		opts.OutputName = m.Name + ".sorted"
	}
	if opts.OutputChunkSize <= 0 {
		if len(m.Chunks) > 0 {
			opts.OutputChunkSize = int(m.Chunks[0].Records)
		} else {
			opts.OutputChunkSize = agd.DefaultChunkSize
		}
	}
	keyCol := keyColumn(m.Columns, opts.By)
	if keyCol < 0 {
		return nil, fmt.Errorf("agdsort: key column missing")
	}
	store := ds.Store()

	// Phase 1: produce sorted superchunks. Batches are independent, so
	// they run in parallel across the machine's cores — the sort is where
	// Persona's 48-thread servers earn the Table 2 advantage.
	numBatches := (len(m.Chunks) + opts.ChunksPerSuperchunk - 1) / opts.ChunksPerSuperchunk
	superNames := make([]string, numBatches)
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	errs := make(chan error, numBatches)
	for b := 0; b < numBatches; b++ {
		superNames[b] = fmt.Sprintf("%s/tmp/super-%06d", opts.OutputName, b)
		start := b * opts.ChunksPerSuperchunk
		end := start + opts.ChunksPerSuperchunk
		if end > len(m.Chunks) {
			end = len(m.Chunks)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(b, start, end int) {
			defer wg.Done()
			defer func() { <-sem }()
			cols, keys, err := stageRun(ds, start, end, keyCol, opts.By)
			if err != nil {
				errs <- err
				return
			}
			sortKeys(cols[keyCol], keys, opts.By)
			if err := writeSuperchunk(store, superNames[b], cols, keys); err != nil {
				errs <- err
			}
		}(b, start, end)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	// Phase 2: k-way merge of superchunks into the output dataset.
	manifest, err := mergeSuperchunks(store, superNames, ds, keyCol, opts)
	if err != nil {
		return nil, err
	}
	// Drop temporaries.
	for _, sn := range superNames {
		if err := store.Delete(sn); err != nil {
			return nil, err
		}
	}
	return manifest, nil
}

// keyColumn locates the column the sort key is derived from.
func keyColumn(columns []string, by Key) int {
	want := agd.ColResults
	if by == ByMetadata {
		want = agd.ColMetadata
	}
	for i, name := range columns {
		if name == want {
			return i
		}
	}
	return -1
}

// sortEntry is one row's packed sort key: the 64-bit primary key (location,
// or the metadata's big-endian 8-byte prefix) plus the row's index into the
// staging arenas. Sorting moves these 12-byte entries, never record bytes.
type sortEntry struct {
	key uint64
	row uint32
}

// loadPrefetch is the chunk-fetch window of the run-staging stream: each
// superchunk batch keeps this many chunks' column blobs in flight, so the
// next row group's fetch overlaps with key extraction over the current one.
const loadPrefetch = 4

// stageRun copies chunks [start, end) into per-column record arenas and
// extracts one packed sort entry per row. Arena staging copies each column
// chunk once (bulk, via AppendChunk) and allocates nothing per record.
func stageRun(ds *agd.Dataset, start, end, keyCol int, by Key) ([]*agd.RecordArena, []sortEntry, error) {
	m := ds.Manifest
	stream, err := ds.Stream(agd.StreamOptions{
		Start: start, End: end, Prefetch: loadPrefetch,
	})
	if err != nil {
		return nil, nil, err
	}
	defer stream.Close()
	cols := make([]*agd.RecordArena, len(m.Columns))
	numRows := 0
	for c := start; c < end; c++ {
		numRows += int(m.Chunks[c].Records)
	}
	for i := range cols {
		cols[i] = agd.NewRecordArena(0, numRows)
	}
	keys := make([]sortEntry, 0, numRows)
	for {
		sc, err := stream.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		// The stream validates every column chunk's record count against the
		// manifest, so the columns are known row-aligned here.
		chunks := sc.Chunks()
		n := chunks[0].NumRecords()
		for col, c := range chunks {
			cols[col].AppendChunk(c)
		}
		keyChunk := chunks[keyCol]
		base := uint32(len(keys))
		for r := 0; r < n; r++ {
			rec, err := keyChunk.Record(r)
			if err != nil {
				return nil, nil, err
			}
			k, err := packKey(rec, by)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, sortEntry{key: k, row: base + uint32(r)})
		}
	}
	return cols, keys, nil
}

// packKey derives a row's 64-bit primary key from its key-column record.
func packKey(rec []byte, by Key) (uint64, error) {
	if by == ByLocation {
		v, err := agd.DecodeResultView(rec)
		if err != nil {
			return 0, err
		}
		if v.IsUnmapped() {
			return unmappedKey, nil
		}
		return uint64(v.Location), nil
	}
	return prefixKey(rec), nil
}

// prefixKey packs up to 8 leading bytes big-endian, so uint64 comparison
// orders like bytes.Compare on the prefix; ties fall back to the full bytes.
func prefixKey(b []byte) uint64 {
	var k uint64
	n := len(b)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		k |= uint64(b[i]) << (56 - 8*i)
	}
	return k
}

// sortKeys orders the packed entries. The paper notes Persona's in-memory
// phase is "currently naive, using std::sort() across chunks";
// slices.SortFunc (pdqsort) is the Go equivalent, moving 12-byte entries
// instead of whole rows. Ties break on row index, which both reproduces a
// stable sort's order and (for ByMetadata) resolves equal 8-byte prefixes
// by comparing the full key bytes in the arena.
func sortKeys(keyArena *agd.RecordArena, keys []sortEntry, by Key) {
	slices.SortFunc(keys, func(a, b sortEntry) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		if by == ByMetadata {
			if c := bytes.Compare(keyArena.Record(int(a.row)), keyArena.Record(int(b.row))); c != 0 {
				return c
			}
		}
		return int(a.row) - int(b.row)
	})
}

// writeSuperchunk encodes the sorted rows into one temporary blob, reading
// fields straight from the staging arenas: each record is the concatenation
// of uvarint-length-prefixed fields. Temporaries are deleted right after the
// merge, so they are stored uncompressed — paying gzip twice on data that
// lives for seconds would only burn the cores the merge needs.
func writeSuperchunk(store agd.BlobStore, name string, cols []*agd.RecordArena, keys []sortEntry) error {
	b := agd.NewChunkBuilder(agd.TypeRaw, 0)
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range keys {
		buf = buf[:0]
		for _, col := range cols {
			f := col.Record(int(e.row))
			n := binary.PutUvarint(tmp[:], uint64(len(f)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, f...)
		}
		b.Append(buf)
	}
	blob, err := agd.EncodeChunk(b.Chunk(), agd.CompressNone)
	if err != nil {
		return err
	}
	return store.Put(name, blob)
}

// superIter iterates rows of a superchunk. Its field scratch is allocated
// once and re-sliced per row, so advancing is allocation-free.
type superIter struct {
	chunk  *agd.Chunk
	next   int
	keyCol int
	by     Key
	ord    int // superchunk ordinal, the final merge tiebreak

	key      uint64 // packed primary key of the current row
	keyBytes []byte // full metadata key (ByMetadata tie resolution)
	fields   [][]byte
}

func openSuperchunk(blob []byte, cols, keyCol int, by Key, ord int) (*superIter, error) {
	c, err := agd.DecodeChunk(blob)
	if err != nil {
		return nil, err
	}
	return &superIter{chunk: c, keyCol: keyCol, by: by, ord: ord, fields: make([][]byte, cols)}, nil
}

// advance loads the next row; returns false at the end.
func (it *superIter) advance() (bool, error) {
	if it.next >= it.chunk.NumRecords() {
		return false, nil
	}
	rec, err := it.chunk.Record(it.next)
	if err != nil {
		return false, err
	}
	it.next++
	off := 0
	for c := range it.fields {
		l, n := binary.Uvarint(rec[off:])
		// The length is range-checked as uint64 before conversion: a corrupt
		// huge varint must not wrap int and slip past the bound.
		if n <= 0 || l > uint64(len(rec)-off-n) {
			return false, fmt.Errorf("agdsort: corrupt superchunk record")
		}
		off += n
		it.fields[c] = rec[off : off+int(l)]
		off += int(l)
	}
	if it.key, err = packKey(it.fields[it.keyCol], it.by); err != nil {
		return false, err
	}
	it.keyBytes = it.fields[it.keyCol]
	return true, nil
}

// less orders iterators by current row; ties break on superchunk ordinal so
// the merge is deterministic and preserves phase-1 order.
func (it *superIter) less(other *superIter) bool {
	if it.key != other.key {
		return it.key < other.key
	}
	if it.by == ByMetadata {
		if c := bytes.Compare(it.keyBytes, other.keyBytes); c != 0 {
			return c < 0
		}
	}
	return it.ord < other.ord
}

// mergeHeap is a hand-rolled binary min-heap of superchunk iterators. Unlike
// container/heap it works on the concrete type, so no per-operation
// interface boxing: the k-way merge allocates nothing per record.
type mergeHeap struct {
	items []*superIter
}

func (h *mergeHeap) push(it *superIter) {
	h.items = append(h.items, it)
	for i := len(h.items) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// fix restores heap order after the root's current row changed.
func (h *mergeHeap) fix() {
	i, n := 0, len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < n && h.items[left].less(h.items[min]) {
			min = left
		}
		if right < n && h.items[right].less(h.items[min]) {
			min = right
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

// pop removes the root (an exhausted iterator).
func (h *mergeHeap) pop() {
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.fix()
	}
}

// mergeSuperchunks streams the heap-merge of all superchunks into the
// output dataset.
func mergeSuperchunks(store agd.BlobStore, superNames []string, ds *agd.Dataset, keyCol int, opts Options) (*agd.Manifest, error) {
	m := ds.Manifest
	cols := make([]agd.ColumnSpec, len(m.Columns))
	for i, name := range m.Columns {
		cols[i] = agd.ColumnSpec{Name: name, Type: columnType(name)}
	}
	w, err := agd.NewWriter(store, opts.OutputName, cols, agd.WriterOptions{
		ChunkSize:     opts.OutputChunkSize,
		RefSeqs:       m.RefSeqs,
		SortedBy:      opts.By.String(),
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, err
	}

	// The merge needs every superchunk resident before it can emit a single
	// row, so fetch them as one batch — the blobs stream in concurrently
	// (per-OSD fan-out on the object store) while the first arrivals decode.
	futs := agd.AsyncOf(store).GetBatch(superNames)
	h := &mergeHeap{items: make([]*superIter, 0, len(superNames))}
	for i := range superNames {
		blob, err := futs[i].Wait(context.Background())
		if err != nil {
			return nil, err
		}
		it, err := openSuperchunk(blob, len(m.Columns), keyCol, opts.By, i)
		if err != nil {
			return nil, err
		}
		ok, err := it.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h.push(it)
		}
	}

	// Superchunk rows hold every column in stored representation (bases
	// stay compacted), so the merge moves bytes without re-encoding.
	for len(h.items) > 0 {
		it := h.items[0]
		if err := w.AppendStored(it.fields...); err != nil {
			return nil, err
		}
		ok, err := it.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h.fix()
		} else {
			h.pop()
		}
	}
	return w.Close()
}

// columnType returns the record type convention for a standard column name.
func columnType(name string) agd.RecordType {
	switch name {
	case agd.ColBases:
		return agd.TypeCompactBases
	case agd.ColResults:
		return agd.TypeResults
	}
	return agd.TypeRaw
}
