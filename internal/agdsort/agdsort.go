// Package agdsort sorts AGD datasets with an external merge sort (§4.3 of
// the paper): several chunks at a time are sorted and merged into temporary
// "superchunks"; a final merge stage streams the superchunks into the
// sorted output dataset. Datasets can be sorted by aligned location or by
// read ID (metadata), the two orders downstream tools need.
package agdsort

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"persona/internal/agd"
)

// Key selects the sort order.
type Key int

const (
	// ByLocation sorts by aligned genome location (requires a results
	// column). Unmapped reads sort last.
	ByLocation Key = iota
	// ByMetadata sorts lexicographically by read ID.
	ByMetadata
)

func (k Key) String() string {
	if k == ByLocation {
		return "location"
	}
	return "metadata"
}

// Options configures a sort.
type Options struct {
	// By selects the sort key.
	By Key
	// ChunksPerSuperchunk is how many input chunks are loaded, sorted and
	// merged into each temporary superchunk (default 8) — the knob that
	// trades memory for merge fan-in.
	ChunksPerSuperchunk int
	// OutputName names the sorted dataset; default "<name>.sorted".
	OutputName string
	// OutputChunkSize is records per output chunk; default: same as input
	// manifest's first chunk.
	OutputChunkSize int
}

// row is one record across all columns plus its sort key.
type row struct {
	key    int64  // ByLocation
	keyStr []byte // ByMetadata
	fields [][]byte
}

// Sort externally sorts a dataset and writes a new sorted dataset,
// returning its manifest.
func Sort(store agd.BlobStore, name string, opts Options) (*agd.Manifest, error) {
	ds, err := agd.Open(store, name)
	if err != nil {
		return nil, err
	}
	return SortDataset(ds, opts)
}

// SortDataset is Sort over an already-open dataset.
func SortDataset(ds *agd.Dataset, opts Options) (*agd.Manifest, error) {
	m := ds.Manifest
	if opts.By == ByLocation && !m.HasColumn(agd.ColResults) {
		return nil, fmt.Errorf("agdsort: dataset %q has no results column to sort by", m.Name)
	}
	if opts.By == ByMetadata && !m.HasColumn(agd.ColMetadata) {
		return nil, fmt.Errorf("agdsort: dataset %q has no metadata column", m.Name)
	}
	if opts.ChunksPerSuperchunk <= 0 {
		opts.ChunksPerSuperchunk = 8
	}
	if opts.OutputName == "" {
		opts.OutputName = m.Name + ".sorted"
	}
	if opts.OutputChunkSize <= 0 {
		if len(m.Chunks) > 0 {
			opts.OutputChunkSize = int(m.Chunks[0].Records)
		} else {
			opts.OutputChunkSize = agd.DefaultChunkSize
		}
	}
	store := ds.Store()

	// Phase 1: produce sorted superchunks. Batches are independent, so
	// they run in parallel across the machine's cores — the sort is where
	// Persona's 48-thread servers earn the Table 2 advantage.
	numBatches := (len(m.Chunks) + opts.ChunksPerSuperchunk - 1) / opts.ChunksPerSuperchunk
	superNames := make([]string, numBatches)
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	errs := make(chan error, numBatches)
	for b := 0; b < numBatches; b++ {
		superNames[b] = fmt.Sprintf("%s/tmp/super-%06d", opts.OutputName, b)
		start := b * opts.ChunksPerSuperchunk
		end := start + opts.ChunksPerSuperchunk
		if end > len(m.Chunks) {
			end = len(m.Chunks)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(b, start, end int) {
			defer wg.Done()
			defer func() { <-sem }()
			rows, err := loadRows(ds, start, end, opts.By)
			if err != nil {
				errs <- err
				return
			}
			sortRows(rows, opts.By)
			if err := writeSuperchunk(store, superNames[b], rows); err != nil {
				errs <- err
			}
		}(b, start, end)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	// Phase 2: k-way merge of superchunks into the output dataset.
	manifest, err := mergeSuperchunks(store, superNames, ds, opts)
	if err != nil {
		return nil, err
	}
	// Drop temporaries.
	for _, sn := range superNames {
		if err := store.Delete(sn); err != nil {
			return nil, err
		}
	}
	return manifest, nil
}

// loadPrefetch is the chunk-fetch window of the run-staging stream: each
// superchunk batch keeps this many chunks' column blobs in flight, so the
// next row group's fetch overlaps with key extraction over the current one.
const loadPrefetch = 4

// loadRows materializes rows for chunks [start, end), streaming all columns
// with prefetch. Rows alias the streamed chunks' data, so the stream runs
// pool-less — each chunk's backing memory lives as long as its rows.
func loadRows(ds *agd.Dataset, start, end int, by Key) ([]row, error) {
	m := ds.Manifest
	stream, err := ds.Stream(agd.StreamOptions{
		Start: start, End: end, Prefetch: loadPrefetch,
	})
	if err != nil {
		return nil, err
	}
	defer stream.Close()
	var rows []row
	for {
		sc, err := stream.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		chunks := sc.Chunks()
		n := chunks[0].NumRecords()
		for r := 0; r < n; r++ {
			fields := make([][]byte, len(chunks))
			for col, c := range chunks {
				rec, err := c.Record(r)
				if err != nil {
					return nil, err
				}
				fields[col] = rec
			}
			rw := row{fields: fields}
			if err := fillKey(&rw, m.Columns, by); err != nil {
				return nil, err
			}
			rows = append(rows, rw)
		}
	}
	return rows, nil
}

// fillKey computes the sort key of a row.
func fillKey(rw *row, columns []string, by Key) error {
	for col, name := range columns {
		switch {
		case by == ByLocation && name == agd.ColResults:
			res, err := agd.DecodeResult(rw.fields[col])
			if err != nil {
				return err
			}
			if res.IsUnmapped() {
				rw.key = int64(1) << 62 // unmapped last
			} else {
				rw.key = res.Location
			}
			return nil
		case by == ByMetadata && name == agd.ColMetadata:
			rw.keyStr = rw.fields[col]
			return nil
		}
	}
	return fmt.Errorf("agdsort: key column missing")
}

// sortRows sorts in-memory rows; the paper notes Persona's in-memory phase
// is "currently naive, using std::sort() across chunks" — sort.SliceStable
// is the Go equivalent.
func sortRows(rows []row, by Key) {
	if by == ByLocation {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	} else {
		sort.SliceStable(rows, func(i, j int) bool { return bytes.Compare(rows[i].keyStr, rows[j].keyStr) < 0 })
	}
}

// writeSuperchunk encodes sorted rows into one temporary blob: each record
// is the concatenation of uvarint-length-prefixed fields. Temporaries are
// deleted right after the merge, so they are stored uncompressed — paying
// gzip twice on data that lives for seconds would only burn the cores the
// merge needs.
func writeSuperchunk(store agd.BlobStore, name string, rows []row) error {
	b := agd.NewChunkBuilder(agd.TypeRaw, 0)
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for i := range rows {
		buf = buf[:0]
		for _, f := range rows[i].fields {
			n := binary.PutUvarint(tmp[:], uint64(len(f)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, f...)
		}
		b.Append(buf)
	}
	blob, err := agd.EncodeChunk(b.Chunk(), agd.CompressNone)
	if err != nil {
		return err
	}
	return store.Put(name, blob)
}

// superIter iterates rows of a superchunk.
type superIter struct {
	chunk *agd.Chunk
	next  int
	cols  int
	by    Key

	cur row
}

func openSuperchunk(blob []byte, cols int, by Key) (*superIter, error) {
	c, err := agd.DecodeChunk(blob)
	if err != nil {
		return nil, err
	}
	return &superIter{chunk: c, cols: cols, by: by}, nil
}

// advance loads the next row; returns false at the end.
func (it *superIter) advance(columns []string) (bool, error) {
	if it.next >= it.chunk.NumRecords() {
		return false, nil
	}
	rec, err := it.chunk.Record(it.next)
	if err != nil {
		return false, err
	}
	it.next++
	fields := make([][]byte, it.cols)
	off := 0
	for c := 0; c < it.cols; c++ {
		l, n := binary.Uvarint(rec[off:])
		if n <= 0 {
			return false, fmt.Errorf("agdsort: corrupt superchunk record")
		}
		off += n
		fields[c] = rec[off : off+int(l)]
		off += int(l)
	}
	it.cur = row{fields: fields}
	if err := fillKey(&it.cur, columns, it.by); err != nil {
		return false, err
	}
	return true, nil
}

// rowHeap is a min-heap of superchunk iterators keyed by current row.
type rowHeap struct {
	items []*superIter
	by    Key
}

func (h *rowHeap) Len() int { return len(h.items) }
func (h *rowHeap) Less(i, j int) bool {
	a, b := &h.items[i].cur, &h.items[j].cur
	if h.by == ByLocation {
		return a.key < b.key
	}
	return bytes.Compare(a.keyStr, b.keyStr) < 0
}
func (h *rowHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *rowHeap) Push(x any)    { h.items = append(h.items, x.(*superIter)) }
func (h *rowHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// mergeSuperchunks streams the heap-merge of all superchunks into the
// output dataset.
func mergeSuperchunks(store agd.BlobStore, superNames []string, ds *agd.Dataset, opts Options) (*agd.Manifest, error) {
	m := ds.Manifest
	cols := make([]agd.ColumnSpec, len(m.Columns))
	for i, name := range m.Columns {
		cols[i] = agd.ColumnSpec{Name: name, Type: columnType(name)}
	}
	w, err := agd.NewWriter(store, opts.OutputName, cols, agd.WriterOptions{
		ChunkSize:     opts.OutputChunkSize,
		RefSeqs:       m.RefSeqs,
		SortedBy:      opts.By.String(),
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, err
	}

	// The merge needs every superchunk resident before it can emit a single
	// row, so fetch them as one batch — the blobs stream in concurrently
	// (per-OSD fan-out on the object store) while the first arrivals decode.
	futs := agd.AsyncOf(store).GetBatch(superNames)
	h := &rowHeap{by: opts.By}
	for i := range superNames {
		blob, err := futs[i].Wait(context.Background())
		if err != nil {
			return nil, err
		}
		it, err := openSuperchunk(blob, len(m.Columns), opts.By)
		if err != nil {
			return nil, err
		}
		ok, err := it.advance(m.Columns)
		if err != nil {
			return nil, err
		}
		if ok {
			h.items = append(h.items, it)
		}
	}
	heap.Init(h)

	// Superchunk rows hold every column in stored representation (bases
	// stay compacted), so the merge moves bytes without re-encoding.
	for h.Len() > 0 {
		it := h.items[0]
		if err := w.AppendStored(it.cur.fields...); err != nil {
			return nil, err
		}
		ok, err := it.advance(m.Columns)
		if err != nil {
			return nil, err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return w.Close()
}

// columnType returns the record type convention for a standard column name.
func columnType(name string) agd.RecordType {
	switch name {
	case agd.ColBases:
		return agd.TypeCompactBases
	case agd.ColResults:
		return agd.TypeResults
	default:
		return agd.TypeRaw
	}
}
