package agdsort

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"persona/internal/agd"
)

// SortStream is the stream-in/stream-out form of Sort, used by composed
// pipelines. The sort is a global barrier, so it cannot be fused record-to-
// record: phase 1 drains the input stream, staging superchunk batches in
// record arenas and spilling each sorted run to the store under
// opts.TempPrefix (the same external-sort spill as the dataset path — the
// paper's §4.3 sort always materializes runs). What the streamed form
// avoids is everything else: the input is never written as a dataset, and
// the merged output feeds the next stage chunk-by-chunk from the heap merge
// instead of being stored and re-read. Spill blobs are deleted when the
// output stream is drained or closed.
func SortStream(ctx context.Context, store agd.BlobStore, in *agd.GroupStream, opts Options) (*agd.GroupStream, error) {
	keyCol := keyColumn(in.Meta.Columns, opts.By)
	if keyCol < 0 {
		if opts.By == ByLocation {
			return nil, fmt.Errorf("agdsort: stream has no results column to sort by")
		}
		return nil, fmt.Errorf("agdsort: stream has no metadata column")
	}
	if opts.ChunksPerSuperchunk <= 0 {
		opts.ChunksPerSuperchunk = 8
	}
	if opts.TempPrefix == "" {
		opts.TempPrefix = "agdsort.stream/tmp"
	}
	if opts.OutputChunkSize <= 0 {
		// Prefer the source's chunking: after a selective filter the first
		// group's size is an arbitrary kept-row count.
		opts.OutputChunkSize = in.Meta.ChunkSize
	}

	// Phase 1: drain the input, spilling one sorted superchunk per batch of
	// ChunksPerSuperchunk groups. Staging is sequential (the stream is
	// pull-based), but sorting and spilling a completed batch runs on
	// background workers so the next batch stages while the previous one
	// sorts — the same overlap the dataset path gets from its batch
	// goroutines.
	var (
		superNames []string
		batchCols  []*agd.RecordArena
		batchKeys  []sortEntry
		batchSize  int
		total      int
		wg         sync.WaitGroup
		sem        = make(chan struct{}, runtime.NumCPU())
		errs       = make(chan error, 1)
	)
	numCols := len(in.Meta.Columns)
	newBatch := func() {
		batchCols = make([]*agd.RecordArena, numCols)
		for i := range batchCols {
			batchCols[i] = agd.NewRecordArena(0, 0)
		}
		batchKeys = batchKeys[len(batchKeys):]
		batchSize = 0
	}
	spill := func() {
		name := fmt.Sprintf("%s/super-%06d", opts.TempPrefix, len(superNames))
		superNames = append(superNames, name)
		cols, keys := batchCols, batchKeys
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			sortKeys(cols[keyCol], keys, opts.By)
			if err := writeSuperchunk(store, name, cols, keys, &opts); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}()
		newBatch()
	}
	fail := func(err error) (*agd.GroupStream, error) {
		wg.Wait()
		for _, sn := range superNames {
			store.Delete(sn)
		}
		return nil, err
	}
	newBatch()
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		if len(g.Chunks) != numCols {
			g.Release()
			return fail(fmt.Errorf("agdsort: group %d has %d columns, stream declares %d", g.Index, len(g.Chunks), numCols))
		}
		if opts.OutputChunkSize <= 0 {
			opts.OutputChunkSize = g.NumRecords()
		}
		batchKeys, err = stageGroup(batchCols, batchKeys, g.Chunks, keyCol, opts.By)
		if err != nil {
			g.Release()
			return fail(err)
		}
		total += g.NumRecords()
		g.Release()
		batchSize++
		if batchSize >= opts.ChunksPerSuperchunk {
			spill()
		}
		select {
		case err := <-errs:
			return fail(err)
		default:
		}
	}
	if batchSize > 0 {
		spill()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return fail(err)
	default:
	}
	if total == 0 {
		return fail(fmt.Errorf("agdsort: stream has no records"))
	}
	if opts.OutputChunkSize <= 0 {
		opts.OutputChunkSize = agd.DefaultChunkSize
	}

	// Phase 2: heap-merge the spilled runs into an output stream. The
	// merged rows are byte-identical, in the same order, as the dataset
	// path's serial merge (which the parallel merge also matches).
	runs, mergedTotal, err := fetchRuns(ctx, store, superNames)
	if err != nil {
		return fail(err)
	}
	if mergedTotal != total {
		return fail(fmt.Errorf("agdsort: spilled %d rows, staged %d", mergedTotal, total))
	}
	specs := agd.SpecsForColumns(in.Meta.Columns)
	h := &mergeHeap{items: make([]*superIter, 0, len(runs))}
	for i, c := range runs {
		it := newSuperIter(c, numCols, keyCol, opts.By, i, 0, c.NumRecords())
		ok, err := it.advance()
		if err != nil {
			return fail(err)
		}
		if ok {
			h.push(it)
		}
	}

	ms := &mergeGroupStream{
		store:     store,
		names:     superNames,
		h:         h,
		specs:     specs,
		chunkSize: opts.OutputChunkSize,
		total:     total,
	}
	if opts.Pipelining > 1 {
		ms.pool = agd.NewBuilderPool(opts.Pipelining, specs)
	} else {
		ms.fixed = &agd.BuilderSet{Builders: make([]*agd.ChunkBuilder, numCols)}
		for i, spec := range specs {
			ms.fixed.Builders[i] = agd.NewChunkBuilder(spec.Type, 0)
		}
	}
	meta := agd.StreamMeta{
		Columns:    in.Meta.Columns,
		RefSeqs:    in.Meta.RefSeqs,
		SortedBy:   opts.By.String(),
		NumRecords: uint64(total),
		ChunkSize:  opts.OutputChunkSize,
	}
	// The stop hook sweeps the spill blobs even when a downstream stage
	// dies mid-merge (an early Close never reaches the EOF-path cleanup),
	// and closes the drained input so teardown keeps cascading upstream.
	out := agd.NewGroupStream(meta, ms.next, func() {
		ms.cleanup()
		in.Close()
	})
	out.Owned = ms.pool != nil
	return out, nil
}

// mergeGroupStream emits the heap merge of the spilled runs as row groups of
// chunkSize records. Serial pulls build into a reused builder set (each
// group valid until the next one is requested); pumped sorts
// (Options.Pipelining > 1) draw from a bounded pool so queued groups stay
// valid until Release.
type mergeGroupStream struct {
	store     agd.BlobStore
	names     []string
	h         *mergeHeap
	fixed     *agd.BuilderSet
	pool      *agd.BuilderPool
	specs     []agd.ColumnSpec
	chunkSize int
	total     int
	emitted   int
	chunkIdx  int

	cleanOnce sync.Once
	cleanMu   sync.Mutex
	cleanErr  error
}

func (ms *mergeGroupStream) next(ctx context.Context) (*agd.RowGroup, error) {
	if ms.emitted >= ms.total {
		ms.cleanup()
		ms.cleanMu.Lock()
		err := ms.cleanErr
		ms.cleanErr = nil // report a failed sweep once, from the EOF pull
		ms.cleanMu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	rows := ms.total - ms.emitted
	if rows > ms.chunkSize {
		rows = ms.chunkSize
	}
	set := ms.fixed
	if ms.pool != nil {
		var err error
		if set, err = ms.pool.Get(ctx, uint64(ms.emitted)); err != nil {
			return nil, err
		}
	}
	builders := set.Builders
	for i, spec := range ms.specs {
		builders[i].Reset(spec.Type, uint64(ms.emitted))
	}
	err := ms.h.emit(rows, func(fields [][]byte) {
		for i, f := range fields {
			builders[i].Append(f)
		}
	})
	if err != nil {
		if ms.pool != nil {
			ms.pool.Put(set)
		}
		return nil, err
	}
	var release func()
	if ms.pool != nil {
		put := set
		release = func() { ms.pool.Put(put) }
	}
	g := agd.NewRowGroup(ms.chunkIdx, 0, set.Chunks(), release)
	ms.chunkIdx++
	ms.emitted += rows
	return g, nil
}

// cleanup deletes the spill blobs exactly once — idempotent and safe under
// a teardown Close racing the merge's own EOF path. A failed delete is
// reported from the final next call.
func (ms *mergeGroupStream) cleanup() {
	ms.cleanOnce.Do(func() {
		for _, name := range ms.names {
			if err := ms.store.Delete(name); err != nil {
				ms.cleanMu.Lock()
				if ms.cleanErr == nil {
					ms.cleanErr = err
				}
				ms.cleanMu.Unlock()
			}
		}
	})
}
