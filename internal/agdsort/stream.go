package agdsort

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"persona/internal/agd"
)

// SortStream is the stream-in/stream-out form of Sort, used by composed
// pipelines. The sort is a global barrier, so it cannot be fused record-to-
// record: phase 1 drains the input stream, staging superchunk batches in
// record arenas and spilling each sorted run to the store under
// opts.TempPrefix (the same external-sort spill as the dataset path — the
// paper's §4.3 sort always materializes runs). What the streamed form
// avoids is everything else: the input is never written as a dataset, and
// the merged output feeds the next stage chunk-by-chunk from the heap merge
// instead of being stored and re-read. Spill blobs are deleted when the
// output stream is drained or closed.
func SortStream(ctx context.Context, store agd.BlobStore, in *agd.GroupStream, opts Options) (*agd.GroupStream, error) {
	keyCol := keyColumn(in.Meta.Columns, opts.By)
	if keyCol < 0 {
		if opts.By == ByLocation {
			return nil, fmt.Errorf("agdsort: stream has no results column to sort by")
		}
		return nil, fmt.Errorf("agdsort: stream has no metadata column")
	}
	if opts.ChunksPerSuperchunk <= 0 {
		opts.ChunksPerSuperchunk = 8
	}
	if opts.TempPrefix == "" {
		opts.TempPrefix = "agdsort.stream/tmp"
	}
	if opts.OutputChunkSize <= 0 {
		// Prefer the source's chunking: after a selective filter the first
		// group's size is an arbitrary kept-row count.
		opts.OutputChunkSize = in.Meta.ChunkSize
	}

	// Phase 1: drain the input, spilling one sorted superchunk per batch of
	// ChunksPerSuperchunk groups. Staging is sequential (the stream is
	// pull-based), but sorting and spilling a completed batch runs on
	// background workers so the next batch stages while the previous one
	// sorts — the same overlap the dataset path gets from its batch
	// goroutines.
	var (
		superNames []string
		batchCols  []*agd.RecordArena
		batchKeys  []sortEntry
		batchSize  int
		total      int
		wg         sync.WaitGroup
		sem        = make(chan struct{}, runtime.NumCPU())
		errs       = make(chan error, 1)
	)
	numCols := len(in.Meta.Columns)
	newBatch := func() {
		batchCols = make([]*agd.RecordArena, numCols)
		for i := range batchCols {
			batchCols[i] = agd.NewRecordArena(0, 0)
		}
		batchKeys = batchKeys[len(batchKeys):]
		batchSize = 0
	}
	spill := func() {
		name := fmt.Sprintf("%s/super-%06d", opts.TempPrefix, len(superNames))
		superNames = append(superNames, name)
		cols, keys := batchCols, batchKeys
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			sortKeys(cols[keyCol], keys, opts.By)
			if err := writeSuperchunk(store, name, cols, keys); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}()
		newBatch()
	}
	fail := func(err error) (*agd.GroupStream, error) {
		wg.Wait()
		for _, sn := range superNames {
			store.Delete(sn)
		}
		return nil, err
	}
	newBatch()
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		if len(g.Chunks) != numCols {
			g.Release()
			return fail(fmt.Errorf("agdsort: group %d has %d columns, stream declares %d", g.Index, len(g.Chunks), numCols))
		}
		if opts.OutputChunkSize <= 0 {
			opts.OutputChunkSize = g.NumRecords()
		}
		batchKeys, err = stageGroup(batchCols, batchKeys, g.Chunks, keyCol, opts.By)
		if err != nil {
			g.Release()
			return fail(err)
		}
		total += g.NumRecords()
		g.Release()
		batchSize++
		if batchSize >= opts.ChunksPerSuperchunk {
			spill()
		}
		select {
		case err := <-errs:
			return fail(err)
		default:
		}
	}
	if batchSize > 0 {
		spill()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return fail(err)
	default:
	}
	if total == 0 {
		return fail(fmt.Errorf("agdsort: stream has no records"))
	}
	if opts.OutputChunkSize <= 0 {
		opts.OutputChunkSize = agd.DefaultChunkSize
	}

	// Phase 2: heap-merge the spilled runs into an output stream. The
	// merged rows are byte-identical, in the same order, as the dataset
	// path's serial merge (which the parallel merge also matches).
	runs, mergedTotal, err := fetchRuns(ctx, store, superNames)
	if err != nil {
		return fail(err)
	}
	if mergedTotal != total {
		return fail(fmt.Errorf("agdsort: spilled %d rows, staged %d", mergedTotal, total))
	}
	specs := agd.SpecsForColumns(in.Meta.Columns)
	h := &mergeHeap{items: make([]*superIter, 0, len(runs))}
	for i, c := range runs {
		it := newSuperIter(c, numCols, keyCol, opts.By, i, 0, c.NumRecords())
		ok, err := it.advance()
		if err != nil {
			return fail(err)
		}
		if ok {
			h.push(it)
		}
	}

	ms := &mergeGroupStream{
		store:     store,
		names:     superNames,
		h:         h,
		builders:  make([]*agd.ChunkBuilder, numCols),
		specs:     specs,
		chunkSize: opts.OutputChunkSize,
		total:     total,
	}
	for i, spec := range specs {
		ms.builders[i] = agd.NewChunkBuilder(spec.Type, 0)
	}
	meta := agd.StreamMeta{
		Columns:    in.Meta.Columns,
		RefSeqs:    in.Meta.RefSeqs,
		SortedBy:   opts.By.String(),
		NumRecords: uint64(total),
		ChunkSize:  opts.OutputChunkSize,
	}
	return agd.NewGroupStream(meta, ms.next, ms.cleanup), nil
}

// mergeGroupStream emits the heap merge of the spilled runs as row groups of
// chunkSize records, built into a reused builder set (each group is valid
// until the next one is requested).
type mergeGroupStream struct {
	store     agd.BlobStore
	names     []string
	h         *mergeHeap
	builders  []*agd.ChunkBuilder
	specs     []agd.ColumnSpec
	chunkSize int
	total     int
	emitted   int
	chunkIdx  int
	cleaned   bool
	cleanErr  error
}

func (ms *mergeGroupStream) next(ctx context.Context) (*agd.RowGroup, error) {
	if ms.emitted >= ms.total {
		wasClean := ms.cleaned
		ms.cleanup()
		if !wasClean && ms.cleanErr != nil {
			return nil, ms.cleanErr
		}
		return nil, io.EOF
	}
	rows := ms.total - ms.emitted
	if rows > ms.chunkSize {
		rows = ms.chunkSize
	}
	for i, spec := range ms.specs {
		ms.builders[i].Reset(spec.Type, uint64(ms.emitted))
	}
	err := ms.h.emit(rows, func(fields [][]byte) {
		for i, f := range fields {
			ms.builders[i].Append(f)
		}
	})
	if err != nil {
		return nil, err
	}
	chunks := make([]*agd.Chunk, len(ms.builders))
	for i := range ms.builders {
		chunks[i] = ms.builders[i].Chunk()
	}
	g := agd.NewRowGroup(ms.chunkIdx, 0, chunks, nil)
	ms.chunkIdx++
	ms.emitted += rows
	return g, nil
}

// cleanup deletes the spill blobs (once); a failed delete is reported from
// the final next call.
func (ms *mergeGroupStream) cleanup() {
	if ms.cleaned {
		return
	}
	ms.cleaned = true
	for _, name := range ms.names {
		if err := ms.store.Delete(name); err != nil && ms.cleanErr == nil {
			ms.cleanErr = err
		}
	}
}
