package agdsort

import (
	"bytes"
	"sort"
	"testing"

	"persona/internal/agd"
	"persona/internal/testutil"
)

func TestSortByLocation(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 150_000, NumReads: 600, ReadLen: 80, ChunkSize: 100, Seed: 51,
	})

	m, err := SortDataset(f.Dataset, Options{By: ByLocation, ChunksPerSuperchunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.SortedBy != "location" {
		t.Fatalf("SortedBy = %q", m.SortedBy)
	}
	if m.NumRecords() != f.Dataset.NumRecords() {
		t.Fatalf("sorted has %d records, want %d", m.NumRecords(), f.Dataset.NumRecords())
	}

	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sorted.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	sawUnmapped := false
	var prev int64 = -1
	for i, r := range results {
		if r.IsUnmapped() {
			sawUnmapped = true
			continue
		}
		if sawUnmapped {
			t.Fatalf("mapped record %d after unmapped block", i)
		}
		if r.Location < prev {
			t.Fatalf("location order violated at %d: %d < %d", i, r.Location, prev)
		}
		prev = r.Location
	}

	// Row integrity: every (bases, meta) pair of the input must still exist.
	inMeta, err := f.Dataset.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	outMeta, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if len(inMeta) != len(outMeta) {
		t.Fatalf("metadata count %d vs %d", len(outMeta), len(inMeta))
	}
	canon := func(ms [][]byte) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = string(m)
		}
		sort.Strings(out)
		return out
	}
	ci, co := canon(inMeta), canon(outMeta)
	for i := range ci {
		if ci[i] != co[i] {
			t.Fatalf("metadata multiset differs at %d: %q vs %q", i, ci[i], co[i])
		}
	}
}

func TestSortRowsStayAligned(t *testing.T) {
	// After sorting, each row's bases must still match its result: realign
	// a sample by checking the metadata ↔ results pairing via the original
	// dataset.
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 100_000, NumReads: 300, ReadLen: 70, ChunkSize: 64, Seed: 52,
	})
	origMeta, err := f.Dataset.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	origResults, err := f.Dataset.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	byMeta := make(map[string]agd.Result, len(origMeta))
	for i := range origMeta {
		byMeta[string(origMeta[i])] = origResults[i]
	}

	m, err := SortDataset(f.Dataset, Options{By: ByLocation})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	sMeta, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	sResults, err := sorted.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sMeta {
		want, ok := byMeta[string(sMeta[i])]
		if !ok {
			t.Fatalf("unknown read %q in sorted output", sMeta[i])
		}
		if sResults[i] != want {
			t.Fatalf("row %d (%s): result no longer matches its read", i, sMeta[i])
		}
	}
}

func TestSortByMetadata(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 80_000, NumReads: 250, ReadLen: 60, ChunkSize: 50, Seed: 53,
	})
	m, err := SortDataset(f.Dataset, Options{By: ByMetadata, OutputName: "byid"})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(metas); i++ {
		if bytes.Compare(metas[i-1], metas[i]) > 0 {
			t.Fatalf("metadata order violated at %d: %q > %q", i, metas[i-1], metas[i])
		}
	}
}

func TestSortPreservesBases(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 60_000, NumReads: 120, ReadLen: 50, ChunkSize: 32, Seed: 54,
	})
	inBases, err := f.Dataset.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	inMeta, err := f.Dataset.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	byMeta := make(map[string]string)
	for i := range inMeta {
		byMeta[string(inMeta[i])] = string(inBases[i])
	}
	m, err := SortDataset(f.Dataset, Options{By: ByLocation})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	outBases, err := sorted.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	outMeta, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outMeta {
		if byMeta[string(outMeta[i])] != string(outBases[i]) {
			t.Fatalf("bases no longer match read %q after sort", outMeta[i])
		}
	}
}

// TestSortByMetadataSharedPrefix exercises the packed-key fallback: the
// sort compares 8-byte big-endian prefixes first, so keys that agree on the
// first 8 bytes (and keys shorter than 8 bytes that are prefixes of longer
// ones) must fall back to full lexicographic comparison.
func TestSortByMetadataSharedPrefix(t *testing.T) {
	store := agd.NewMemStore()
	metas := []string{
		"sharedprefix-zz",
		"sharedprefix-aa",
		"sharedpre",       // 9 bytes, shares the full 8-byte prefix
		"sharedpr",        // exactly 8 bytes
		"shared",          // shorter than the prefix width
		"sharedprefix-aa", // duplicate key
		"sharedprefix-mm",
		"aaa",
		"zzz",
	}
	w, err := agd.NewWriter(store, "ds", []agd.ColumnSpec{{Name: agd.ColMetadata, Type: agd.TypeRaw}},
		agd.WriterOptions{ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metas {
		if err := w.Append([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	// ChunksPerSuperchunk 2 forces a multi-superchunk merge, so both the
	// in-memory sort and the heap merge hit the prefix-tie path.
	m, err := SortDataset(ds, Options{By: ByMetadata, ChunksPerSuperchunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string{}, metas...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("sorted %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("order wrong at %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSortCleansTemporaries(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 50_000, NumReads: 100, ReadLen: 50, ChunkSize: 25, Seed: 55,
	})
	if _, err := SortDataset(f.Dataset, Options{By: ByLocation, OutputName: "out"}); err != nil {
		t.Fatal(err)
	}
	tmp, err := store.List("out/tmp/")
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Fatalf("temporaries remain: %v", tmp)
	}
}

func TestSortErrors(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "noresults", testutil.Config{
		GenomeSize: 50_000, NumReads: 60, ReadLen: 50, ChunkSize: 30, Seed: 56, SkipAlign: true,
	})
	if _, err := SortDataset(f.Dataset, Options{By: ByLocation}); err == nil {
		t.Fatal("sort by location without results column succeeded")
	}
	if _, err := Sort(store, "missing", Options{}); err == nil {
		t.Fatal("sorting a missing dataset succeeded")
	}
}
