package agdsort

import (
	"context"
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"persona/internal/agd"
	"persona/internal/testutil"
)

func TestSortByLocation(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 150_000, NumReads: 600, ReadLen: 80, ChunkSize: 100, Seed: 51,
	})

	m, err := SortDataset(context.Background(), f.Dataset, Options{By: ByLocation, ChunksPerSuperchunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.SortedBy != "location" {
		t.Fatalf("SortedBy = %q", m.SortedBy)
	}
	if m.NumRecords() != f.Dataset.NumRecords() {
		t.Fatalf("sorted has %d records, want %d", m.NumRecords(), f.Dataset.NumRecords())
	}

	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sorted.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	sawUnmapped := false
	var prev int64 = -1
	for i, r := range results {
		if r.IsUnmapped() {
			sawUnmapped = true
			continue
		}
		if sawUnmapped {
			t.Fatalf("mapped record %d after unmapped block", i)
		}
		if r.Location < prev {
			t.Fatalf("location order violated at %d: %d < %d", i, r.Location, prev)
		}
		prev = r.Location
	}

	// Row integrity: every (bases, meta) pair of the input must still exist.
	inMeta, err := f.Dataset.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	outMeta, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if len(inMeta) != len(outMeta) {
		t.Fatalf("metadata count %d vs %d", len(outMeta), len(inMeta))
	}
	canon := func(ms [][]byte) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = string(m)
		}
		sort.Strings(out)
		return out
	}
	ci, co := canon(inMeta), canon(outMeta)
	for i := range ci {
		if ci[i] != co[i] {
			t.Fatalf("metadata multiset differs at %d: %q vs %q", i, ci[i], co[i])
		}
	}
}

func TestSortRowsStayAligned(t *testing.T) {
	// After sorting, each row's bases must still match its result: realign
	// a sample by checking the metadata ↔ results pairing via the original
	// dataset.
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 100_000, NumReads: 300, ReadLen: 70, ChunkSize: 64, Seed: 52,
	})
	origMeta, err := f.Dataset.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	origResults, err := f.Dataset.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	byMeta := make(map[string]agd.Result, len(origMeta))
	for i := range origMeta {
		byMeta[string(origMeta[i])] = origResults[i]
	}

	m, err := SortDataset(context.Background(), f.Dataset, Options{By: ByLocation})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	sMeta, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	sResults, err := sorted.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sMeta {
		want, ok := byMeta[string(sMeta[i])]
		if !ok {
			t.Fatalf("unknown read %q in sorted output", sMeta[i])
		}
		if sResults[i] != want {
			t.Fatalf("row %d (%s): result no longer matches its read", i, sMeta[i])
		}
	}
}

func TestSortByMetadata(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 80_000, NumReads: 250, ReadLen: 60, ChunkSize: 50, Seed: 53,
	})
	m, err := SortDataset(context.Background(), f.Dataset, Options{By: ByMetadata, OutputName: "byid"})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(metas); i++ {
		if bytes.Compare(metas[i-1], metas[i]) > 0 {
			t.Fatalf("metadata order violated at %d: %q > %q", i, metas[i-1], metas[i])
		}
	}
}

func TestSortPreservesBases(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 60_000, NumReads: 120, ReadLen: 50, ChunkSize: 32, Seed: 54,
	})
	inBases, err := f.Dataset.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	inMeta, err := f.Dataset.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	byMeta := make(map[string]string)
	for i := range inMeta {
		byMeta[string(inMeta[i])] = string(inBases[i])
	}
	m, err := SortDataset(context.Background(), f.Dataset, Options{By: ByLocation})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	outBases, err := sorted.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	outMeta, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outMeta {
		if byMeta[string(outMeta[i])] != string(outBases[i]) {
			t.Fatalf("bases no longer match read %q after sort", outMeta[i])
		}
	}
}

// TestSortByMetadataSharedPrefix exercises the packed-key fallback: the
// sort compares 8-byte big-endian prefixes first, so keys that agree on the
// first 8 bytes (and keys shorter than 8 bytes that are prefixes of longer
// ones) must fall back to full lexicographic comparison.
func TestSortByMetadataSharedPrefix(t *testing.T) {
	store := agd.NewMemStore()
	metas := []string{
		"sharedprefix-zz",
		"sharedprefix-aa",
		"sharedpre",       // 9 bytes, shares the full 8-byte prefix
		"sharedpr",        // exactly 8 bytes
		"shared",          // shorter than the prefix width
		"sharedprefix-aa", // duplicate key
		"sharedprefix-mm",
		"aaa",
		"zzz",
	}
	w, err := agd.NewWriter(store, "ds", []agd.ColumnSpec{{Name: agd.ColMetadata, Type: agd.TypeRaw}},
		agd.WriterOptions{ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metas {
		if err := w.Append([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	// ChunksPerSuperchunk 2 forces a multi-superchunk merge, so both the
	// in-memory sort and the heap merge hit the prefix-tie path.
	m, err := SortDataset(context.Background(), ds, Options{By: ByMetadata, ChunksPerSuperchunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.ReadAllColumn(agd.ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string{}, metas...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("sorted %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("order wrong at %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// copyInto copies every blob of src into a fresh MemStore.
func copyInto(t *testing.T, src agd.BlobStore) *agd.MemStore {
	t.Helper()
	dst := agd.NewMemStore()
	names, err := src.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		blob, err := src.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Put(n, blob); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// snapshotBlobs returns name → contents for every blob under prefix.
func snapshotBlobs(t *testing.T, store agd.BlobStore, prefix string) map[string][]byte {
	t.Helper()
	names, err := store.List(prefix)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, n := range names {
		blob, err := store.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = blob
	}
	return out
}

// sortWithShards runs the same sort on a fresh copy of the input store with
// the given merge parallelism and returns the output dataset's blobs.
func sortWithShards(t *testing.T, src agd.BlobStore, by Key, p int) map[string][]byte {
	t.Helper()
	store := copyInto(t, src)
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SortDataset(context.Background(), ds, Options{
		By: by, ChunksPerSuperchunk: 3, OutputName: "sorted", MergeShards: p,
	}); err != nil {
		t.Fatalf("MergeShards=%d: %v", p, err)
	}
	return snapshotBlobs(t, store, "sorted/")
}

// TestParallelMergeByteIdentical is the range-partition property test: for
// every merge parallelism the output dataset — every chunk blob and the
// manifest — must be byte-identical to the serial merge's, for both sort
// orders. Partition counts around and above the output chunk count exercise
// seam chunks assembled from several partitions' pieces.
func TestParallelMergeByteIdentical(t *testing.T) {
	store := agd.NewMemStore()
	testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 120_000, NumReads: 700, ReadLen: 70, ChunkSize: 64, Seed: 57, DupFrac: 0.2,
	})
	for _, by := range []Key{ByLocation, ByMetadata} {
		t.Run("by="+by.String(), func(t *testing.T) {
			ref := sortWithShards(t, store, by, 1)
			if len(ref) == 0 {
				t.Fatal("serial sort produced no blobs")
			}
			for _, p := range []int{2, 3, 8} {
				got := sortWithShards(t, store, by, p)
				if len(got) != len(ref) {
					t.Fatalf("MergeShards=%d wrote %d blobs, serial wrote %d", p, len(got), len(ref))
				}
				for name, want := range ref {
					if !bytes.Equal(got[name], want) {
						t.Fatalf("MergeShards=%d: blob %q differs from serial merge", p, name)
					}
				}
			}
		})
	}
}

// TestParallelMergeSkewedKeys forces splitter duplication: every record
// shares one 8-byte prefix and the distinct full keys are fewer than the
// partition count, so most partitions are empty and whole chunks fall into
// single seam pieces — the degenerate ranges must still reproduce the
// serial bytes.
func TestParallelMergeSkewedKeys(t *testing.T) {
	store := agd.NewMemStore()
	w, err := agd.NewWriter(store, "ds", []agd.ColumnSpec{{Name: agd.ColMetadata, Type: agd.TypeRaw}},
		agd.WriterOptions{ChunkSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 61; i++ {
		if err := w.Append([]byte(fmt.Sprintf("sharedprefix-%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ref := sortWithShards(t, store, ByMetadata, 1)
	for _, p := range []int{2, 3, 8} {
		got := sortWithShards(t, store, ByMetadata, p)
		if len(got) != len(ref) {
			t.Fatalf("MergeShards=%d wrote %d blobs, serial wrote %d", p, len(got), len(ref))
		}
		for name, want := range ref {
			if !bytes.Equal(got[name], want) {
				t.Fatalf("MergeShards=%d: blob %q differs from serial merge", p, name)
			}
		}
	}
}

// TestRadixMatchesComparisonSort cross-checks the phase-1 LSD radix path
// against the comparison sort on random keys, including 8-byte prefix
// collisions that need the full-byte tie fallback.
func TestRadixMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	prefixes := []string{"sharedpr", "sharedpx", "aa", ""}
	for trial := 0; trial < 40; trial++ {
		n := radixMinLen + rng.Intn(600)
		arena := agd.NewRecordArena(0, n)
		keys := make([]sortEntry, 0, n)
		for r := 0; r < n; r++ {
			var rec []byte
			switch trial % 2 {
			case 0: // location-style packed keys over a small range + unmapped
				if rng.Intn(10) == 0 {
					keys = append(keys, sortEntry{key: unmappedKey, row: uint32(r)})
					arena.Append(nil)
					continue
				}
				rec = []byte(fmt.Sprintf("loc%06d", rng.Intn(5000)))
				keys = append(keys, sortEntry{key: uint64(rng.Intn(5000)), row: uint32(r)})
				arena.Append(rec)
				continue
			default: // metadata with colliding prefixes
				rec = []byte(prefixes[rng.Intn(len(prefixes))] + fmt.Sprintf("%d", rng.Intn(50)))
			}
			keys = append(keys, sortEntry{key: prefixKey(rec), row: uint32(r)})
			arena.Append(rec)
		}
		by := ByLocation
		if trial%2 == 1 {
			by = ByMetadata
		}
		want := append([]sortEntry{}, keys...)
		comparisonSortKeys(arena, want, by)
		got := append([]sortEntry{}, keys...)
		sortKeys(arena, got, by) // n >= radixMinLen: the radix path
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (by=%s): entry %d = %+v, comparison sort says %+v",
					trial, by, i, got[i], want[i])
			}
		}
	}
}

func TestSortCleansTemporaries(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 50_000, NumReads: 100, ReadLen: 50, ChunkSize: 25, Seed: 55,
	})
	if _, err := SortDataset(context.Background(), f.Dataset, Options{By: ByLocation, OutputName: "out"}); err != nil {
		t.Fatal(err)
	}
	tmp, err := store.List("out/tmp/")
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Fatalf("temporaries remain: %v", tmp)
	}
}

func TestSortErrors(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "noresults", testutil.Config{
		GenomeSize: 50_000, NumReads: 60, ReadLen: 50, ChunkSize: 30, Seed: 56, SkipAlign: true,
	})
	if _, err := SortDataset(context.Background(), f.Dataset, Options{By: ByLocation}); err == nil {
		t.Fatal("sort by location without results column succeeded")
	}
	if _, err := Sort(context.Background(), store, "missing", Options{}); err == nil {
		t.Fatal("sorting a missing dataset succeeded")
	}
}
