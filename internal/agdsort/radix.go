package agdsort

import (
	"bytes"
	"slices"

	"persona/internal/agd"
)

// Phase-1 run sorting. The packed sortEntry array is ordered with an LSD
// radix sort: byte-wide counting passes over only the key bytes that
// actually vary across the run (genome locations occupy the low 3–4 bytes,
// read-ID prefixes a similar span, so most of the 8 passes a naive uint64
// radix would make are skipped). Counting sort is stable, so entries with
// equal packed keys keep their row order — exactly the comparison sort's
// row-index tiebreak. ByMetadata keys that collide on the 8-byte prefix are
// resolved afterwards with a full-byte comparison within each equal-prefix
// group.

// radixMinLen is the size below which pdqsort's lower constant factors beat
// the radix passes; small runs fall back to the comparison sort.
const radixMinLen = 96

// sortKeys orders the packed entries. The paper notes Persona's in-memory
// phase is "currently naive, using std::sort() across chunks"; the radix
// sort moves 12-byte entries in O(varying bytes) passes instead.
func sortKeys(keyArena *agd.RecordArena, keys []sortEntry, by Key) {
	if len(keys) < radixMinLen {
		comparisonSortKeys(keyArena, keys, by)
		return
	}
	radixSortEntries(keys, make([]sortEntry, len(keys)))
	if by == ByMetadata {
		resolvePrefixTies(keyArena, keys)
	}
}

// comparisonSortKeys is the slices.SortFunc (pdqsort) path: primary packed
// key, ByMetadata prefix ties on full key bytes, final tie on row index —
// which both reproduces a stable sort's order and resolves equal 8-byte
// prefixes.
func comparisonSortKeys(keyArena *agd.RecordArena, keys []sortEntry, by Key) {
	slices.SortFunc(keys, func(a, b sortEntry) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		if by == ByMetadata {
			if c := bytes.Compare(keyArena.Record(int(a.row)), keyArena.Record(int(b.row))); c != 0 {
				return c
			}
		}
		return int(a.row) - int(b.row)
	})
}

// radixSortEntries sorts keys by the packed key with stable byte-wide LSD
// passes, ping-ponging between keys and scratch (len(scratch) must equal
// len(keys)). Only byte positions where the keys differ get a pass; the
// result always ends up back in keys.
func radixSortEntries(keys, scratch []sortEntry) {
	// One OR-reduction finds the varying byte positions.
	var diff uint64
	first := keys[0].key
	for _, e := range keys {
		diff |= e.key ^ first
	}
	if diff == 0 {
		return // all keys equal: stability keeps row order
	}
	var counts [256]int
	src, dst := keys, scratch
	for shift := uint(0); shift < 64; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, e := range src {
			counts[(e.key>>shift)&0xff]++
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, e := range src {
			d := (e.key >> shift) & 0xff
			dst[counts[d]] = e
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// resolvePrefixTies finishes a ByMetadata radix sort: runs of entries whose
// 8-byte prefixes collide are re-ordered by their full key bytes (ties on
// row index, preserving stability). Groups are rare — read IDs usually
// diverge within 8 bytes — so the scan is the common cost.
func resolvePrefixTies(keyArena *agd.RecordArena, keys []sortEntry) {
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j].key == keys[i].key {
			j++
		}
		if j-i > 1 {
			slices.SortFunc(keys[i:j], func(a, b sortEntry) int {
				if c := bytes.Compare(keyArena.Record(int(a.row)), keyArena.Record(int(b.row))); c != 0 {
					return c
				}
				return int(a.row) - int(b.row)
			})
		}
		i = j
	}
}
