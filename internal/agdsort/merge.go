package agdsort

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"

	"persona/internal/agd"
)

// Phase-2 merge. The sorted superchunks ("runs") are merged into the output
// dataset either serially (one heap, one writer — MergeShards 1) or with a
// range-partitioned parallel merge: sampled splitter keys cut every run into
// P aligned key ranges, and P independent heap merges emit their spans of
// output rows concurrently. A partition encodes and stores every output
// chunk it wholly owns; rows of chunks straddling a partition seam are
// staged in RecordArenas and stitched in row order afterwards, so the stored
// blobs are byte-identical to the serial merge's at any P.

// superIter iterates rows [next, limit) of a decoded superchunk. Its field
// scratch is allocated once and re-sliced per row, so advancing is
// allocation-free.
type superIter struct {
	chunk  *agd.Chunk
	next   int
	limit  int
	keyCol int
	by     Key
	ord    int // superchunk ordinal, the final merge tiebreak

	key      uint64 // packed primary key of the current row
	keyBytes []byte // full metadata key (ByMetadata tie resolution)
	fields   [][]byte
}

// newSuperIter positions an iterator over rows [lo, hi) of a decoded
// superchunk. The chunk may be shared by iterators of other partitions; it
// is only read.
func newSuperIter(c *agd.Chunk, cols, keyCol int, by Key, ord, lo, hi int) *superIter {
	return &superIter{
		chunk: c, next: lo, limit: hi,
		keyCol: keyCol, by: by, ord: ord,
		fields: make([][]byte, cols),
	}
}

// advance loads the next row; returns false at the end of the range.
func (it *superIter) advance() (bool, error) {
	if it.next >= it.limit {
		return false, nil
	}
	rec, err := it.chunk.Record(it.next)
	if err != nil {
		return false, err
	}
	it.next++
	off := 0
	for c := range it.fields {
		l, n := binary.Uvarint(rec[off:])
		// The length is range-checked as uint64 before conversion: a corrupt
		// huge varint must not wrap int and slip past the bound.
		if n <= 0 || l > uint64(len(rec)-off-n) {
			return false, fmt.Errorf("agdsort: corrupt superchunk record")
		}
		off += n
		it.fields[c] = rec[off : off+int(l)]
		off += int(l)
	}
	if it.key, err = packKey(it.fields[it.keyCol], it.by); err != nil {
		return false, err
	}
	it.keyBytes = it.fields[it.keyCol]
	return true, nil
}

// less orders iterators by current row; ties break on superchunk ordinal so
// the merge is deterministic and preserves phase-1 order.
func (it *superIter) less(other *superIter) bool {
	if it.key != other.key {
		return it.key < other.key
	}
	if it.by == ByMetadata {
		if c := bytes.Compare(it.keyBytes, other.keyBytes); c != 0 {
			return c < 0
		}
	}
	return it.ord < other.ord
}

// mergeHeap is a hand-rolled binary min-heap of superchunk iterators. Unlike
// container/heap it works on the concrete type, so no per-operation
// interface boxing: the k-way merge allocates nothing per record.
type mergeHeap struct {
	items []*superIter
}

func (h *mergeHeap) push(it *superIter) {
	h.items = append(h.items, it)
	for i := len(h.items) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// fix restores heap order after the root's current row changed.
func (h *mergeHeap) fix() {
	i, n := 0, len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < n && h.items[left].less(h.items[min]) {
			min = left
		}
		if right < n && h.items[right].less(h.items[min]) {
			min = right
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

// pop removes the root (an exhausted iterator).
func (h *mergeHeap) pop() {
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.fix()
	}
}

// emit streams the next n merged rows into sink (each call's fields are
// valid until the next advance).
func (h *mergeHeap) emit(n int, sink func(fields [][]byte)) error {
	for i := 0; i < n; i++ {
		if len(h.items) == 0 {
			return fmt.Errorf("agdsort: merge ran out of rows")
		}
		it := h.items[0]
		sink(it.fields)
		ok, err := it.advance()
		if err != nil {
			return err
		}
		if ok {
			h.fix()
		} else {
			h.pop()
		}
	}
	return nil
}

// columnSpecs builds the output dataset's column specs (all gzip, the
// writer default).
func columnSpecs(m *agd.Manifest) []agd.ColumnSpec {
	return agd.SpecsForColumns(m.Columns)
}

// fetchRuns fetches and decodes every superchunk as one batch — the blobs
// stream in concurrently (per-OSD fan-out on the object store) while the
// first arrivals decode.
func fetchRuns(ctx context.Context, store agd.BlobStore, superNames []string) ([]*agd.Chunk, int, error) {
	futs := agd.AsyncOf(store).GetBatch(superNames)
	runs := make([]*agd.Chunk, len(superNames))
	total := 0
	for i := range superNames {
		blob, err := futs[i].Wait(ctx)
		if err != nil {
			return nil, 0, err
		}
		c, err := agd.DecodeChunk(blob)
		if err != nil {
			return nil, 0, err
		}
		runs[i] = c
		total += c.NumRecords()
	}
	return runs, total, nil
}

// mergeSuperchunks fetches and decodes every superchunk, then merges them
// into the output dataset — serially, or range-partitioned across
// opts.MergeShards independent merges.
func mergeSuperchunks(ctx context.Context, store agd.BlobStore, superNames []string, ds *agd.Dataset, keyCol int, opts Options) (*agd.Manifest, error) {
	// The merge needs every superchunk resident before it can emit a single
	// row.
	runs, total, err := fetchRuns(ctx, store, superNames)
	if err != nil {
		return nil, err
	}

	p := opts.MergeShards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > total {
		p = total
	}
	if p <= 1 {
		return mergeSerial(ctx, store, runs, ds, keyCol, opts)
	}
	return mergeParallel(ctx, store, runs, ds, keyCol, opts, p, total)
}

// mergeSerial streams the heap-merge of all superchunks into the output
// dataset through a single writer.
func mergeSerial(ctx context.Context, store agd.BlobStore, runs []*agd.Chunk, ds *agd.Dataset, keyCol int, opts Options) (*agd.Manifest, error) {
	m := ds.Manifest
	w, err := agd.NewWriter(store, opts.OutputName, columnSpecs(m), agd.WriterOptions{
		ChunkSize:     opts.OutputChunkSize,
		RefSeqs:       m.RefSeqs,
		SortedBy:      opts.By.String(),
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, err
	}
	h := &mergeHeap{items: make([]*superIter, 0, len(runs))}
	for i, c := range runs {
		it := newSuperIter(c, len(m.Columns), keyCol, opts.By, i, 0, c.NumRecords())
		ok, err := it.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h.push(it)
		}
	}

	// Superchunk rows hold every column in stored representation (bases
	// stay compacted), so the merge moves bytes without re-encoding. The
	// context is checked once per output chunk's worth of rows.
	row := 0
	for len(h.items) > 0 {
		if row%opts.OutputChunkSize == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row++
		it := h.items[0]
		if err := w.AppendStored(it.fields...); err != nil {
			return nil, err
		}
		ok, err := it.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h.fix()
		} else {
			h.pop()
		}
	}
	return w.Close()
}

// splitter is one partition boundary: rows comparing >= it belong to the
// partition to its right. For ByMetadata the full key bytes refine the
// packed prefix, so rows with equal full keys can never straddle a seam.
type splitter struct {
	key  uint64
	full []byte // full key bytes (ByMetadata only), aliasing run data
}

// runKeyField returns the key-column field bytes of row r of a decoded
// superchunk.
func runKeyField(c *agd.Chunk, keyCol, r int) ([]byte, error) {
	rec, err := c.Record(r)
	if err != nil {
		return nil, err
	}
	off := 0
	for f := 0; ; f++ {
		l, n := binary.Uvarint(rec[off:])
		if n <= 0 || l > uint64(len(rec)-off-n) {
			return nil, fmt.Errorf("agdsort: corrupt superchunk record")
		}
		off += n
		if f == keyCol {
			return rec[off : off+int(l)], nil
		}
		off += int(l)
	}
}

// rowKey returns row r's packed key and (for ByMetadata tie comparison) its
// full key-field bytes.
func rowKey(c *agd.Chunk, keyCol, r int, by Key) (uint64, []byte, error) {
	f, err := runKeyField(c, keyCol, r)
	if err != nil {
		return 0, nil, err
	}
	k, err := packKey(f, by)
	return k, f, err
}

// splitterSamples is how many rows each run contributes to splitter
// selection; the runs are sorted, so evenly spaced rows are an equi-depth
// histogram of the run's key range.
const splitterSamples = 64

// pickSplitters samples the runs and returns p-1 quantile splitters
// (sorted; duplicates possible on skewed keys, yielding empty partitions).
// Only the sampled rows are parsed — the merge itself re-reads every row, so
// there is no up-front full-dataset key pass.
func pickSplitters(runs []*agd.Chunk, keyCol int, by Key, p int) ([]splitter, error) {
	samples := make([]splitter, 0, len(runs)*splitterSamples)
	for _, run := range runs {
		n := run.NumRecords()
		s := splitterSamples
		if s > n {
			s = n
		}
		for i := 0; i < s; i++ {
			k, f, err := rowKey(run, keyCol, i*n/s, by)
			if err != nil {
				return nil, err
			}
			sp := splitter{key: k}
			if by == ByMetadata {
				sp.full = f
			}
			samples = append(samples, sp)
		}
	}
	slices.SortFunc(samples, func(a, b splitter) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		return bytes.Compare(a.full, b.full)
	})
	out := make([]splitter, p-1)
	for i := 1; i < p; i++ {
		out[i-1] = samples[i*len(samples)/p]
	}
	return out, nil
}

// cutRun returns the first row of the run whose key compares >= sp, parsing
// only the O(log n) probed rows. The predicate is monotone, so cuts taken
// at sorted splitters are themselves sorted, and rows with equal keys all
// land right of the cut — the property that keeps tie order identical to
// the serial merge.
func cutRun(run *agd.Chunk, keyCol int, by Key, sp splitter) int {
	return sort.Search(run.NumRecords(), func(r int) bool {
		k, f, err := rowKey(run, keyCol, r, by)
		if err != nil {
			// A corrupt row partitions arbitrarily; the partition merge
			// re-parses every row and surfaces the error there.
			return false
		}
		if k != sp.key {
			return k > sp.key
		}
		if by == ByMetadata {
			return bytes.Compare(f, sp.full) >= 0
		}
		return true
	})
}

// partPiece is a partition's fragment of an output chunk that straddles a
// partition seam: the rows the partition owns, staged per column in record
// arenas, stitched with the neighboring partitions' pieces afterwards.
type partPiece struct {
	chunkIdx int
	arenas   []*agd.RecordArena
}

// mergePartition heap-merges one key range (rows [lo[r], hi[r]) of every
// run): output chunks wholly inside the partition are built, encoded and
// stored here; seam chunks' rows come back as pieces.
func mergePartition(ctx context.Context, store agd.BlobStore, runs []*agd.Chunk, cols []agd.ColumnSpec, keyCol int, opts Options, lo, hi []int, startRow, total int, entries []agd.ChunkEntry) ([]partPiece, error) {
	chunkSize := opts.OutputChunkSize
	end := startRow
	for r := range runs {
		end += hi[r] - lo[r]
	}
	h := &mergeHeap{items: make([]*superIter, 0, len(runs))}
	for r, c := range runs {
		if lo[r] >= hi[r] {
			continue
		}
		it := newSuperIter(c, len(cols), keyCol, opts.By, r, lo[r], hi[r])
		ok, err := it.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			h.push(it)
		}
	}

	var pieces []partPiece
	builders := make([]*agd.ChunkBuilder, len(cols))
	row := startRow
	for row < end {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cIdx := row / chunkSize
		cStart := cIdx * chunkSize
		cEnd := cStart + chunkSize
		if cEnd > total {
			cEnd = total
		}
		stop := cEnd
		if stop > end {
			stop = end
		}
		if row == cStart && cEnd <= end {
			// The partition owns chunk cIdx outright: build and store it
			// here, reusing the builder set across chunks.
			for i, c := range cols {
				if builders[i] == nil {
					builders[i] = agd.NewChunkBuilder(c.Type, uint64(cStart))
				} else {
					builders[i].Reset(c.Type, uint64(cStart))
				}
			}
			err := h.emit(stop-row, func(fields [][]byte) {
				for i, f := range fields {
					builders[i].Append(f)
				}
			})
			if err != nil {
				return nil, err
			}
			if err := storeChunk(store, entries[cIdx], cols, builders); err != nil {
				return nil, err
			}
		} else {
			// Seam chunk: stage this partition's rows for stitching.
			arenas := make([]*agd.RecordArena, len(cols))
			for i := range arenas {
				arenas[i] = agd.NewRecordArena(0, stop-row)
			}
			err := h.emit(stop-row, func(fields [][]byte) {
				for i, f := range fields {
					arenas[i].Append(f)
				}
			})
			if err != nil {
				return nil, err
			}
			pieces = append(pieces, partPiece{chunkIdx: cIdx, arenas: arenas})
		}
		row = stop
	}
	if len(h.items) != 0 {
		return nil, fmt.Errorf("agdsort: partition merge left rows behind")
	}
	return pieces, nil
}

// storeChunk encodes and stores every column blob of one output chunk —
// the same per-column compression and blob naming the serial writer's
// encodeAndStore performs, via the shared agd helpers.
func storeChunk(store agd.BlobStore, entry agd.ChunkEntry, cols []agd.ColumnSpec, builders []*agd.ChunkBuilder) error {
	for i, c := range cols {
		blob, err := agd.EncodeChunk(builders[i].Chunk(), c.EffectiveCompression())
		if err != nil {
			return err
		}
		if err := store.Put(agd.ColumnBlobPath(entry, c.Name), blob); err != nil {
			return err
		}
	}
	return nil
}

// mergeParallel is the range-partitioned merge: p independent heap merges
// over splitter-aligned key ranges, then a stitch pass for the chunks that
// straddle partition seams.
func mergeParallel(ctx context.Context, store agd.BlobStore, runs []*agd.Chunk, ds *agd.Dataset, keyCol int, opts Options, p, total int) (*agd.Manifest, error) {
	m := ds.Manifest
	cols := columnSpecs(m)
	by := opts.By
	chunkSize := opts.OutputChunkSize

	splitters, err := pickSplitters(runs, keyCol, by, p)
	if err != nil {
		return nil, err
	}

	// bounds[j][r] is run r's first row of partition j; partition j owns
	// rows [bounds[j][r], bounds[j+1][r]) of every run.
	bounds := make([][]int, p+1)
	bounds[0] = make([]int, len(runs))
	bounds[p] = make([]int, len(runs))
	for r, c := range runs {
		bounds[p][r] = c.NumRecords()
	}
	for j := 1; j < p; j++ {
		bounds[j] = make([]int, len(runs))
		for r := range runs {
			bounds[j][r] = cutRun(runs[r], keyCol, by, splitters[j-1])
		}
	}
	starts := make([]int, p+1)
	for j := 0; j < p; j++ {
		size := 0
		for r := range runs {
			size += bounds[j+1][r] - bounds[j][r]
		}
		starts[j+1] = starts[j] + size
	}

	// Output chunk layout (known up front: the merge only reorders rows).
	numChunks := (total + chunkSize - 1) / chunkSize
	entries := make([]agd.ChunkEntry, numChunks)
	for c := range entries {
		first := c * chunkSize
		recs := chunkSize
		if first+recs > total {
			recs = total - first
		}
		entries[c] = agd.ChunkEntry{
			Path:    agd.ChunkEntryPath(opts.OutputName, c),
			First:   uint64(first),
			Records: uint32(recs),
		}
	}

	// The p partition merges run concurrently; each encodes and stores its
	// wholly-owned chunks and returns seam pieces.
	piecesByPart := make([][]partPiece, p)
	partErrs := make([]error, p)
	var wg sync.WaitGroup
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			piecesByPart[j], partErrs[j] = mergePartition(
				ctx, store, runs, cols, keyCol, opts, bounds[j], bounds[j+1], starts[j], total, entries)
		}(j)
	}
	wg.Wait()
	for _, err := range partErrs {
		if err != nil {
			return nil, err
		}
	}

	// Stitch seam chunks: pieces arrive in partition order, which is row
	// order, so consecutive pieces with the same chunk index concatenate
	// into that chunk.
	var frags []partPiece
	for _, ps := range piecesByPart {
		frags = append(frags, ps...)
	}
	for i := 0; i < len(frags); {
		k := i + 1
		for k < len(frags) && frags[k].chunkIdx == frags[i].chunkIdx {
			k++
		}
		if err := stitchChunk(store, entries[frags[i].chunkIdx], cols, frags[i:k]); err != nil {
			return nil, err
		}
		i = k
	}

	out := agd.NewManifest(opts.OutputName, cols, entries, m.RefSeqs, by.String())
	if err := agd.WriteManifest(store, out); err != nil {
		return nil, err
	}
	return out, nil
}

// stitchChunk assembles one seam chunk from its partitions' pieces and
// stores it.
func stitchChunk(store agd.BlobStore, entry agd.ChunkEntry, cols []agd.ColumnSpec, pieces []partPiece) error {
	builders := make([]*agd.ChunkBuilder, len(cols))
	rows := 0
	for i, c := range cols {
		builders[i] = agd.NewChunkBuilder(c.Type, entry.First)
		for _, pc := range pieces {
			ra := pc.arenas[i]
			for r := 0; r < ra.Len(); r++ {
				builders[i].Append(ra.Record(r))
			}
		}
	}
	rows = builders[0].NumRecords()
	if rows != int(entry.Records) {
		return fmt.Errorf("agdsort: seam chunk %q stitched %d rows, want %d", entry.Path, rows, entry.Records)
	}
	return storeChunk(store, entry, cols, builders)
}
