package agdsort

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"persona/internal/agd"
)

// benchEntries builds n packed entries with location-like keys (a few
// varying low bytes plus the unmapped bit) or metadata-prefix keys.
func benchEntries(n int, metadata bool) ([]sortEntry, *agd.RecordArena) {
	rng := rand.New(rand.NewSource(59))
	arena := agd.NewRecordArena(0, n)
	keys := make([]sortEntry, n)
	for i := range keys {
		if metadata {
			rec := []byte(fmt.Sprintf("sim.%07d", rng.Intn(1<<20)))
			keys[i] = sortEntry{key: prefixKey(rec), row: uint32(i)}
			arena.Append(rec)
			continue
		}
		k := uint64(rng.Intn(200_000))
		if rng.Intn(20) == 0 {
			k = unmappedKey
		}
		keys[i] = sortEntry{key: k, row: uint32(i)}
		arena.Append(nil)
	}
	return keys, arena
}

// BenchmarkKernel_SortEntries compares phase 1's LSD radix passes against
// the slices.SortFunc comparison sort on the same packed entries (the
// Table2_Sorts run-sorting kernel).
func BenchmarkKernel_SortEntries(b *testing.B) {
	const n = 100_000
	for _, mode := range []string{"location", "metadata"} {
		keys, arena := benchEntries(n, mode == "metadata")
		by := ByLocation
		if mode == "metadata" {
			by = ByMetadata
		}
		work := make([]sortEntry, n)
		scratch := make([]sortEntry, n)
		b.Run("radix/by="+mode, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(n * 12))
			for i := 0; i < b.N; i++ {
				copy(work, keys)
				radixSortEntries(work, scratch)
				if by == ByMetadata {
					resolvePrefixTies(arena, work)
				}
			}
		})
		b.Run("comparison/by="+mode, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(n * 12))
			for i := 0; i < b.N; i++ {
				copy(work, keys)
				comparisonSortKeys(arena, work, by)
			}
		})
	}
}

// BenchmarkTable2_MergeShards sweeps the phase-2 merge parallelism over a
// fixed superchunk set, isolating the range-partitioned merge from phase 1.
func BenchmarkTable2_MergeShards(b *testing.B) {
	store := agd.NewMemStore()
	w, err := agd.NewWriter(store, "ds", []agd.ColumnSpec{
		{Name: agd.ColMetadata, Type: agd.TypeRaw},
		{Name: agd.ColQual, Type: agd.TypeRaw},
	}, agd.WriterOptions{ChunkSize: 250})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(60))
	qual := make([]byte, 80)
	for i := range qual {
		qual[i] = 'I'
	}
	for i := 0; i < 4000; i++ {
		if err := w.Append([]byte(fmt.Sprintf("read.%09d", rng.Intn(1<<30))), qual); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		b.Fatal(err)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SortDataset(context.Background(), ds, Options{
					By: ByMetadata, OutputName: "sorted", MergeShards: p,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
