package agdsort

import (
	"sync"

	"persona/internal/agd"
)

// Spill accounting for the external sort's superchunk runs. Historically
// runs were always stored raw — on a local store, paying gzip twice on data
// that lives for seconds only burns the cores the merge needs. On a remote
// store the trade flips once transfer dominates, so Options.SpillDecider
// lets a measured cost model (internal/tco.SpillPolicy fed by the
// RetryStore read profile) choose per run, and SpillStats records what was
// decided for the pipeline report.

// SpillStats accumulates per-run spill decisions. Safe for concurrent use —
// phase-1 spill workers run on background goroutines.
type SpillStats struct {
	mu          sync.Mutex
	runs        int
	compressed  int
	rawBytes    int64
	storedBytes int64
	decision    string
}

// record logs one spilled run.
func (s *SpillStats) record(raw, stored int64, comp agd.Compression, reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.runs++
	if comp != agd.CompressNone {
		s.compressed++
	}
	s.rawBytes += raw
	s.storedBytes += stored
	s.decision = reason
	s.mu.Unlock()
}

// Report snapshots the accumulated accounting.
func (s *SpillStats) Report() SpillReport {
	if s == nil {
		return SpillReport{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpillReport{
		Runs:        s.runs,
		Compressed:  s.compressed,
		RawBytes:    s.rawBytes,
		StoredBytes: s.storedBytes,
		Decision:    s.decision,
	}
}

// SpillReport is the per-sort spill summary surfaced in PipelineReport.
type SpillReport struct {
	// Runs is how many superchunk runs were spilled; Compressed how many
	// of them the policy chose to compress.
	Runs       int `json:"runs"`
	Compressed int `json:"compressed"`
	// RawBytes is the total uncompressed run payload; StoredBytes what
	// actually went to the store (encoded blobs, compressed or not).
	RawBytes    int64 `json:"raw_bytes"`
	StoredBytes int64 `json:"stored_bytes"`
	// Decision is the policy's reason tag for the most recent run (e.g.
	// "local", "transfer-dominated"); runs within one sort see the same
	// store profile, so in practice it describes them all.
	Decision string `json:"decision,omitempty"`
}
