package agdsort

import (
	"context"
	"fmt"
	"io"

	"persona/internal/agd"
)

// Exported distributed-sort surface: the pieces of the external sort a
// cross-node range shuffle needs — phase-1 run building from a bounded
// group stream, equi-spaced run sampling for global splitter selection,
// splitter-aligned run cutting, and a streaming k-way merge over run
// fragments. internal/shuffle and internal/cluster compose these into the
// distributed fused pipeline; the in-process sort keeps using the
// unexported forms directly, so both paths share one implementation and
// emit byte-identical row orders.

// RunSample is one sampled row of a sorted run: the packed 64-bit primary
// key plus, for ByMetadata, the full key-field bytes that refine prefix
// ties. Samples cross the manifest-server protocol, so Full never aliases
// run memory.
type RunSample struct {
	Key  uint64
	Full []byte
}

// KeyColumn locates the column the sort key is derived from, or -1.
func KeyColumn(columns []string, by Key) int { return keyColumn(columns, by) }

// PackRecordKey derives a row's packed 64-bit primary key from its
// key-column record bytes — the same key the in-process sort orders by
// (unmapped reads pack after every mapped location).
func PackRecordKey(rec []byte, by Key) (uint64, error) { return packKey(rec, by) }

// RunField returns the col-th uvarint-framed field of row r of a decoded
// run chunk, aliasing the chunk's data.
func RunField(run *agd.Chunk, col, r int) ([]byte, error) { return runKeyField(run, col, r) }

// CutRun returns the first row of a sorted run whose key compares >= cut;
// rows with keys equal to the cut all land at or after the returned index,
// so cuts taken at identical samples are identical across runs — the
// property that keeps cross-partition tie order equal to a global merge.
func CutRun(run *agd.Chunk, keyCol int, by Key, cut RunSample) int {
	return cutRun(run, keyCol, by, splitter{key: cut.Key, full: cut.Full})
}

// RunInfo reports a built run.
type RunInfo struct {
	// Rows is the run's record count.
	Rows int
	// RawBytes is the staged payload size before framing and compression.
	RawBytes int64
	// Samples holds up to the requested number of equi-spaced rows of the
	// sorted run — an equi-depth histogram of its key range.
	Samples []RunSample
}

// BuildRun drains every group of in, stages the rows into record arenas,
// sorts them by the key, and writes one run blob (the distributed analogue
// of the in-process sort's phase-1 superchunk spill: same staging, same
// stable sort, same uvarint-framed run encoding, so a run built from input
// chunks [b·K, (b+1)·K) is byte-identical to the single-node spill of the
// same batch). samples rows are sampled equi-spaced from the sorted order;
// visit, when non-nil, is called for every sorted row with its packed key
// and key-column field (the hook span accounting for duplicate-marking
// halos rides on). The input stream is not closed.
func BuildRun(ctx context.Context, store agd.BlobStore, in *agd.GroupStream, name string, by Key, samples int, visit func(key uint64, keyField []byte) error) (RunInfo, error) {
	keyCol := keyColumn(in.Meta.Columns, by)
	if keyCol < 0 {
		return RunInfo{}, fmt.Errorf("agdsort: build run %q: no %s key column", name, by)
	}
	cols := make([]*agd.RecordArena, len(in.Meta.Columns))
	for i := range cols {
		cols[i] = agd.NewRecordArena(0, in.Meta.ChunkSize)
	}
	var keys []sortEntry
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return RunInfo{}, err
		}
		keys, err = stageGroup(cols, keys, g.Chunks, keyCol, by)
		g.Release()
		if err != nil {
			return RunInfo{}, err
		}
	}
	sortKeys(cols[keyCol], keys, by)

	info := RunInfo{Rows: len(keys)}
	for _, c := range cols {
		info.RawBytes += int64(c.DataLen())
	}
	if visit != nil {
		for _, e := range keys {
			if err := visit(e.key, cols[keyCol].Record(int(e.row))); err != nil {
				return RunInfo{}, err
			}
		}
	}
	if n := len(keys); n > 0 && samples > 0 {
		s := samples
		if s > n {
			s = n
		}
		info.Samples = make([]RunSample, 0, s)
		for i := 0; i < s; i++ {
			e := keys[i*n/s]
			sm := RunSample{Key: e.key}
			if by == ByMetadata {
				// Copy out of the arena: samples outlive the staging memory.
				sm.Full = append([]byte(nil), cols[keyCol].Record(int(e.row))...)
			}
			info.Samples = append(info.Samples, sm)
		}
	}
	if err := writeSuperchunk(store, name, cols, keys, &Options{}); err != nil {
		return RunInfo{}, err
	}
	return info, nil
}

// RunMerger streams the k-way merge of decoded sorted runs (or
// splitter-aligned fragments of runs) in global key order, breaking ties by
// each run's ordinal — the same heap, comparison and tie rule the
// in-process phase-2 merge uses, so concatenating per-partition merges over
// aligned cuts reproduces the single-merge row order exactly.
type RunMerger struct {
	h   mergeHeap
	cur *superIter
}

// NewRunMerger builds a merger over runs. ords[i] is run i's merge-ordinal
// tiebreak (nil uses the slice index); for fragments of a larger run set it
// must be the originating run's ordinal. Nil or empty runs are skipped.
func NewRunMerger(runs []*agd.Chunk, numCols, keyCol int, by Key, ords []int) (*RunMerger, error) {
	m := &RunMerger{h: mergeHeap{items: make([]*superIter, 0, len(runs))}}
	for i, c := range runs {
		if c == nil || c.NumRecords() == 0 {
			continue
		}
		ord := i
		if ords != nil {
			ord = ords[i]
		}
		it := newSuperIter(c, numCols, keyCol, by, ord, 0, c.NumRecords())
		ok, err := it.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			m.h.push(it)
		}
	}
	return m, nil
}

// Next returns the next merged row's fields (one per column, aliasing run
// data, valid until the following Next call); ok is false when the merge is
// drained.
func (m *RunMerger) Next() (fields [][]byte, ok bool, err error) {
	if m.cur != nil {
		advanced, err := m.cur.advance()
		if err != nil {
			return nil, false, err
		}
		if advanced {
			m.h.fix()
		} else {
			m.h.pop()
		}
		m.cur = nil
	}
	if len(m.h.items) == 0 {
		return nil, false, nil
	}
	m.cur = m.h.items[0]
	return m.cur.fields, true, nil
}
