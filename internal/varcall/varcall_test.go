package varcall

import (
	"context"
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/genome"
	"persona/internal/reads"
)

// donorFixture builds a reference, plants homozygous SNPs into a donor copy,
// simulates high-coverage reads from the donor, aligns them against the
// original reference, and returns everything the caller needs.
func donorFixture(t *testing.T, numSNPs int) (*genome.Genome, *agd.Dataset, map[int64]byte) {
	t.Helper()
	ref, err := genome.Synthesize(genome.DefaultSyntheticConfig(100_000, 201))
	if err != nil {
		t.Fatal(err)
	}

	// Donor: the reference with planted substitutions, away from contig
	// edges so reads can span them.
	donorSeq := append([]byte{}, ref.Seq()...)
	rng := rand.New(rand.NewSource(202))
	planted := make(map[int64]byte)
	for len(planted) < numSNPs {
		pos := int64(rng.Intn(len(donorSeq)-400) + 200)
		if _, dup := planted[pos]; dup {
			continue
		}
		old := donorSeq[pos]
		if old == 'N' {
			continue
		}
		var alt byte
		for {
			alt = "ACGT"[rng.Intn(4)]
			if alt != old {
				break
			}
		}
		donorSeq[pos] = alt
		planted[pos] = alt
	}
	var contigs []genome.Contig
	off := int64(0)
	for _, c := range ref.Contigs() {
		contigs = append(contigs, genome.Contig{Name: c.Name, Seq: donorSeq[off : off+int64(c.Len())]})
		off += int64(c.Len())
	}
	donor, err := genome.New(contigs)
	if err != nil {
		t.Fatal(err)
	}

	// ~30x coverage of 80-bp reads from the donor.
	n := int(donor.Len()) * 30 / 80
	sim, err := reads.NewSimulator(donor, reads.SimConfig{Seed: 203, N: n, ReadLen: 80, ErrorRate: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()

	store := agd.NewMemStore()
	w, err := agd.NewWriter(store, "donor", agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: 2000, RefSeqs: agd.RefSeqsFromGenome(ref),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if err := w.Append(rs[i].Bases, rs[i].Quals, []byte(rs[i].Meta)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}

	idx, err := snap.BuildIndex(ref, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	aligner := snap.NewAligner(idx, snap.Config{MaxDist: 10})
	results := make([][]byte, len(rs))
	for i := range rs {
		res := aligner.AlignRead(rs[i].Bases)
		results[i] = agd.EncodeResult(nil, &res)
	}
	m, err = agd.AppendColumn(store, m, agd.ColumnSpec{Name: agd.ColResults, Type: agd.TypeResults},
		func(chunkIdx int) ([][]byte, error) {
			e := m.Chunks[chunkIdx]
			return results[e.First : e.First+uint64(e.Records)], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return ref, agd.OpenManifest(store, m), planted
}

func TestCallRecoversPlantedSNPs(t *testing.T) {
	ref, ds, planted := donorFixture(t, 40)
	variants, err := CallDataset(context.Background(), ds, ref, NewOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Index calls by global position.
	called := make(map[int64]Variant)
	for _, v := range variants {
		g, err := ref.GlobalPos(v.Contig, v.Pos)
		if err != nil {
			t.Fatal(err)
		}
		called[g] = v
	}

	recovered := 0
	for pos, alt := range planted {
		v, ok := called[pos]
		if !ok {
			continue
		}
		if v.Alt != alt {
			t.Fatalf("at %d called %c, planted %c", pos, v.Alt, alt)
		}
		if v.Genotype != "1/1" {
			t.Fatalf("homozygous SNP at %d called %s", pos, v.Genotype)
		}
		recovered++
	}
	if frac := float64(recovered) / float64(len(planted)); frac < 0.85 {
		t.Fatalf("recovered %d/%d planted SNPs (%.2f)", recovered, len(planted), frac)
	}
	// Precision: false calls should be rare relative to true ones.
	falseCalls := len(called) - recovered
	if falseCalls > len(planted)/2 {
		t.Fatalf("%d false calls vs %d planted", falseCalls, len(planted))
	}
}

func TestCallCleanDataHasFewVariants(t *testing.T) {
	// Reads simulated from the reference itself: calls should be ~none.
	ref, ds, _ := func() (*genome.Genome, *agd.Dataset, map[int64]byte) {
		t.Helper()
		return donorFixtureClean(t)
	}()
	variants, err := CallDataset(context.Background(), ds, ref, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) > 12 {
		t.Fatalf("%d variants called on variant-free data", len(variants))
	}
}

// donorFixtureClean simulates reads straight from the reference.
func donorFixtureClean(t *testing.T) (*genome.Genome, *agd.Dataset, map[int64]byte) {
	t.Helper()
	ref, err := genome.Synthesize(genome.DefaultSyntheticConfig(80_000, 204))
	if err != nil {
		t.Fatal(err)
	}
	n := int(ref.Len()) * 20 / 80
	sim, err := reads.NewSimulator(ref, reads.SimConfig{Seed: 205, N: n, ReadLen: 80, ErrorRate: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	store := agd.NewMemStore()
	w, err := agd.NewWriter(store, "clean", agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: 2000, RefSeqs: agd.RefSeqsFromGenome(ref),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if err := w.Append(rs[i].Bases, rs[i].Quals, []byte(rs[i].Meta)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := snap.BuildIndex(ref, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	aligner := snap.NewAligner(idx, snap.Config{MaxDist: 10})
	results := make([][]byte, len(rs))
	for i := range rs {
		res := aligner.AlignRead(rs[i].Bases)
		results[i] = agd.EncodeResult(nil, &res)
	}
	m, err = agd.AppendColumn(store, m, agd.ColumnSpec{Name: agd.ColResults, Type: agd.TypeResults},
		func(chunkIdx int) ([][]byte, error) {
			e := m.Chunks[chunkIdx]
			return results[e.First : e.First+uint64(e.Records)], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return ref, agd.OpenManifest(store, m), nil
}

func TestWriteVCF(t *testing.T) {
	refs := []agd.RefSeq{{Name: "chr1", Length: 1000}}
	variants := []Variant{
		{Contig: "chr1", Pos: 41, Ref: 'A', Alt: 'T', Depth: 30, AltDepth: 29, Qual: 580, Genotype: "1/1"},
		{Contig: "chr1", Pos: 99, Ref: 'G', Alt: 'C', Depth: 28, AltDepth: 13, Qual: 260, Genotype: "0/1"},
	}
	var buf bytes.Buffer
	if err := WriteVCF(&buf, refs, variants); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"##fileformat=VCFv4.2",
		"##contig=<ID=chr1,length=1000>",
		"#CHROM\tPOS",
		"chr1\t42\t.\tA\tT\t580.0\tPASS\tDP=30;AD=29\tGT\t1/1",
		"chr1\t100\t.\tG\tC\t260.0\tPASS\tDP=28;AD=13\tGT\t0/1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCF missing %q:\n%s", want, out)
		}
	}
}

func TestPileupDepthAccounting(t *testing.T) {
	ref, ds, _ := donorFixtureClean(t)
	p := NewPileup(ref)
	if err := p.AddDataset(context.Background(), ds, NewOptions()); err != nil {
		t.Fatal(err)
	}
	reads, used := p.Stats()
	if reads == 0 || used == 0 || used > reads {
		t.Fatalf("stats = %d, %d", reads, used)
	}
	// Middle of the genome should be covered around 20x.
	mid := ref.Len() / 2
	sum := 0
	for off := int64(-50); off <= 50; off++ {
		sum += p.Depth(mid + off)
	}
	avg := float64(sum) / 101
	if avg < 5 || avg > 60 {
		t.Fatalf("average depth at center = %.1f, want ≈20", avg)
	}
	if p.Depth(-1) != 0 || p.Depth(1<<40) != 0 {
		t.Fatal("out-of-range depth not zero")
	}
}

func TestCallRejectsNoResults(t *testing.T) {
	ref, err := genome.Synthesize(genome.DefaultSyntheticConfig(50_000, 206))
	if err != nil {
		t.Fatal(err)
	}
	store := agd.NewMemStore()
	w, err := agd.NewWriter(store, "x", agd.StandardReadColumns(), agd.WriterOptions{ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("ACGT"), []byte("IIII"), []byte("r")); err != nil {
		t.Fatal(err)
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CallDataset(context.Background(), agd.OpenManifest(store, m), ref, NewOptions()); err == nil {
		t.Fatal("dataset without results accepted")
	}
}
