// Package varcall implements a pileup-based SNP caller with VCF output —
// the variant-calling stage the paper names as the pipeline's destination
// (§1, §2.1) and reports as under active integration (§8: "work ongoing to
// integrate comprehensive data filtering and variant calling"). The
// algorithm is the classic frequency caller: pile up aligned bases per
// reference position, then call positions where the alternate-allele
// fraction clears a threshold, emitting VCF 4.2 records (§2.2 cites VCF as
// the standard variant format).
package varcall

import (
	"context"
	"fmt"
	"io"
	"math"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/genome"
)

// Options parameterizes calling.
type Options struct {
	// MinDepth is the minimum pileup depth to consider a site (default 4).
	MinDepth int
	// MinAltFraction is the minimum alternate-allele fraction to call a
	// variant (default 0.25).
	MinAltFraction float64
	// HomFraction is the fraction above which a call is homozygous
	// (default 0.75).
	HomFraction float64
	// MinBaseQual drops pileup bases below this Phred quality (default 10).
	MinBaseQual int
	// MinMapQ drops reads below this mapping quality (default 10).
	MinMapQ uint8
	// SkipDuplicates ignores reads flagged as duplicates (default true via
	// NewOptions).
	SkipDuplicates bool
	// Prefetch is the chunk-fetch window of the pileup's input stream
	// (agd.ChunkStream); 0 selects agd.DefaultPrefetch.
	Prefetch int
}

// NewOptions returns the default calling options.
func NewOptions() Options {
	return Options{
		MinDepth:       4,
		MinAltFraction: 0.25,
		HomFraction:    0.75,
		MinBaseQual:    10,
		MinMapQ:        10,
		SkipDuplicates: true,
	}
}

func (o Options) withDefaults() Options {
	d := NewOptions()
	if o.MinDepth <= 0 {
		o.MinDepth = d.MinDepth
	}
	if o.MinAltFraction <= 0 {
		o.MinAltFraction = d.MinAltFraction
	}
	if o.HomFraction <= 0 {
		o.HomFraction = d.HomFraction
	}
	if o.MinBaseQual <= 0 {
		o.MinBaseQual = d.MinBaseQual
	}
	return o
}

// Variant is one called SNP.
type Variant struct {
	Contig   string
	Pos      int64 // 0-based within the contig
	Ref, Alt byte
	Depth    int
	AltDepth int
	Qual     float64
	// Genotype is "0/1" (het) or "1/1" (hom alt).
	Genotype string
}

// Pileup holds per-position base counts over the genome's global space.
type Pileup struct {
	gen    *genome.Genome
	counts [][4]int32 // indexed by global position, then base code
	depth  []int32
	reads  int64
	used   int64

	// Reused per-read scratch: parsed CIGAR, reverse-complemented sequence
	// and reversed qualities. Piling up allocates nothing per read.
	cigar  align.Cigar
	rcSeq  []byte
	rcQual []byte
}

// NewPileup allocates a pileup over the whole genome. Memory is
// 20 bytes/base; for the synthetic scales this package targets that is
// megabytes. (A windowed pileup would replace this for 3-Gbp references.)
func NewPileup(g *genome.Genome) *Pileup {
	return &Pileup{
		gen:    g,
		counts: make([][4]int32, g.Len()),
		depth:  make([]int32, g.Len()),
	}
}

// AddDataset piles up every eligible read of an aligned dataset, streaming
// the three columns it needs through a prefetching agd.ChunkStream.
// Cancellation and deadline of ctx are checked per chunk.
func (p *Pileup) AddDataset(ctx context.Context, ds *agd.Dataset, opts Options) error {
	opts = opts.withDefaults()
	m := ds.Manifest
	if !m.HasColumn(agd.ColResults) {
		return fmt.Errorf("varcall: dataset %q has no results column", m.Name)
	}
	window := opts.Prefetch
	if window <= 0 {
		window = agd.DefaultPrefetch
	}
	chunkPool := agd.NewChunkPool(3 * (window + 1))
	stream, err := ds.Stream(agd.StreamOptions{
		Columns:  []string{agd.ColBases, agd.ColQual, agd.ColResults},
		Prefetch: opts.Prefetch,
		Pool:     chunkPool,
	})
	if err != nil {
		return err
	}
	defer stream.Close()
	var scratch []byte
	for {
		sc, err := stream.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		chunks := sc.Chunks()
		basesChunk, qualChunk, resChunk := chunks[0], chunks[1], chunks[2]
		for r := 0; r < basesChunk.NumRecords(); r++ {
			res, err := resChunk.DecodeResultViewRecord(r)
			if err != nil {
				return err
			}
			p.reads++
			if res.IsUnmapped() || res.MapQ < opts.MinMapQ {
				continue
			}
			if opts.SkipDuplicates && res.IsDuplicate() {
				continue
			}
			bases, err := basesChunk.ExpandBasesRecord(scratch[:0], r)
			if err != nil {
				return err
			}
			scratch = bases
			qual, err := qualChunk.Record(r)
			if err != nil {
				return err
			}
			if err := p.addRead(bases, qual, &res, opts); err != nil {
				return err
			}
			p.used++
		}
		sc.Release()
	}
}

// addRead walks one read's CIGAR, attributing aligned bases to reference
// positions. Stored reads are in as-sequenced orientation; reverse-strand
// CIGARs refer to the reverse complement, so the read is flipped first
// (into the pileup's reused scratch).
func (p *Pileup) addRead(bases, qual []byte, res *agd.ResultView, opts Options) error {
	cigar, err := align.ParseCigarBytes(p.cigar[:0], res.Cigar)
	p.cigar = cigar
	if err != nil {
		return err
	}
	seq := bases
	quals := qual
	if res.IsReverse() {
		p.rcSeq = genome.ReverseComplementScratch(p.rcSeq, bases)
		p.rcQual = genome.ReverseScratch(p.rcQual, qual)
		seq, quals = p.rcSeq, p.rcQual
	}
	qi, ref := 0, res.Location
	for _, e := range cigar {
		switch e.Op {
		case align.CigarMatch, align.CigarEqual, align.CigarDiff:
			for k := 0; k < e.Len; k++ {
				if ref >= 0 && ref < p.gen.Len() && int(quals[qi]-'!') >= opts.MinBaseQual {
					code := genome.Code(seq[qi])
					if code <= 3 {
						p.counts[ref][code]++
						p.depth[ref]++
					}
				}
				qi++
				ref++
			}
		case align.CigarIns, align.CigarSoftClip:
			qi += e.Len
		case align.CigarDel, align.CigarSkip:
			ref += int64(e.Len)
		case align.CigarHardClip, align.CigarPad:
			// consume nothing
		}
	}
	return nil
}

// Stats reports pileup accounting.
func (p *Pileup) Stats() (reads, used int64) { return p.reads, p.used }

// Depth returns the pileup depth at a global position.
func (p *Pileup) Depth(pos int64) int {
	if pos < 0 || pos >= int64(len(p.depth)) {
		return 0
	}
	return int(p.depth[pos])
}

// Call scans the pileup and returns SNP calls in genome order.
func (p *Pileup) Call(opts Options) ([]Variant, error) {
	opts = opts.withDefaults()
	var out []Variant
	seq := p.gen.Seq()
	for pos := int64(0); pos < p.gen.Len(); pos++ {
		depth := int(p.depth[pos])
		if depth < opts.MinDepth {
			continue
		}
		refBase := seq[pos]
		refCode := genome.Code(refBase)
		// Best non-reference allele.
		altCode, altCount := -1, int32(0)
		for c := 0; c < 4; c++ {
			if uint8(c) == refCode {
				continue
			}
			if p.counts[pos][c] > altCount {
				altCode, altCount = c, p.counts[pos][c]
			}
		}
		if altCode < 0 || altCount == 0 {
			continue
		}
		frac := float64(altCount) / float64(depth)
		if frac < opts.MinAltFraction {
			continue
		}
		contig, off, err := p.gen.Locate(pos)
		if err != nil {
			return nil, err
		}
		genotype := "0/1"
		if frac >= opts.HomFraction {
			genotype = "1/1"
		}
		out = append(out, Variant{
			Contig:   contig,
			Pos:      off,
			Ref:      refBase,
			Alt:      genome.Letter(uint8(altCode)),
			Depth:    depth,
			AltDepth: int(altCount),
			Qual:     variantQual(int(altCount), depth),
			Genotype: genotype,
		})
	}
	return out, nil
}

// variantQual is a Phred-scaled confidence from a binomial error model: the
// probability of altDepth reads all being miscalls at ~1% error.
func variantQual(altDepth, depth int) float64 {
	q := float64(altDepth) * 20 // -10·log10(0.01) per supporting read
	if q > 3000 {
		q = 3000
	}
	_ = depth
	return math.Round(q*10) / 10
}

// CallDataset piles up a dataset and calls variants in one step.
func CallDataset(ctx context.Context, ds *agd.Dataset, g *genome.Genome, opts Options) ([]Variant, error) {
	p := NewPileup(g)
	if err := p.AddDataset(ctx, ds, opts); err != nil {
		return nil, err
	}
	return p.Call(opts)
}

// WriteVCF renders calls as a minimal VCF 4.2 stream.
func WriteVCF(w io.Writer, refs []agd.RefSeq, variants []Variant) error {
	if _, err := fmt.Fprintf(w, "##fileformat=VCFv4.2\n##source=persona\n"); err != nil {
		return err
	}
	for _, r := range refs {
		if _, err := fmt.Fprintf(w, "##contig=<ID=%s,length=%d>\n", r.Name, r.Length); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Total Depth\">\n"+
		"##INFO=<ID=AD,Number=1,Type=Integer,Description=\"Alt Depth\">\n"+
		"##FORMAT=<ID=GT,Number=1,Type=String,Description=\"Genotype\">\n"+
		"#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tsample\n"); err != nil {
		return err
	}
	for _, v := range variants {
		if _, err := fmt.Fprintf(w, "%s\t%d\t.\t%c\t%c\t%.1f\tPASS\tDP=%d;AD=%d\tGT\t%s\n",
			v.Contig, v.Pos+1, v.Ref, v.Alt, v.Qual, v.Depth, v.AltDepth, v.Genotype); err != nil {
			return err
		}
	}
	return nil
}

// refsOf is a convenience for VCF emission from a genome.
func RefsOf(g *genome.Genome) []agd.RefSeq { return agd.RefSeqsFromGenome(g) }
