package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client speaks the persona-server job API (api.go). The zero value plus a
// Base URL works; Tenant defaults to "default" server-side.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:7333".
	Base string
	// Tenant is sent as the X-Persona-Tenant header when non-empty.
	Tenant string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

// HTTPError is a non-2xx API response, carrying the server's Retry-After
// hint for transient rejections. IsTransient/HTTPStatus classification on
// the client side falls out of the status code.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("jobs: server status %d: %s", e.Status, e.Msg)
}

// Transient reports whether the response invites a retry (429 or 5xx).
func (e *HTTPError) Transient() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes a 2xx JSON body into out (when non-nil);
// non-2xx responses come back as *HTTPError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return fmt.Errorf("client %q: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client %q: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("client %q: %w", path, decodeError(resp))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client %q: decode: %w", path, err)
	}
	return nil
}

func decodeError(resp *http.Response) *HTTPError {
	he := &HTTPError{Status: resp.StatusCode}
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		he.RetryAfter = time.Duration(s) * time.Second
	}
	var body struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		he.Msg = body.Error
	} else {
		he.Msg = string(bytes.TrimSpace(data))
	}
	return he
}

// Submit posts a job spec, returning the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec Spec) (*JobStatus, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client submit: %w", err)
	}
	st := &JobStatus{}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(data), st); err != nil {
		return nil, err
	}
	return st, nil
}

// Status fetches a job's record and live progress.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	st := &JobStatus{}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Jobs lists the server's jobs, optionally filtered by tenant.
func (c *Client) Jobs(ctx context.Context, tenant string) ([]*JobStatus, error) {
	path := "/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var out []*JobStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Result fetches a DONE job's exported bytes and content type. For
// dataset-format jobs the body is the ResultMeta JSON.
func (c *Client) Result(ctx context.Context, id string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, "", fmt.Errorf("client result %q: %w", id, err)
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("client result %q: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, "", fmt.Errorf("client result %q: %w", id, decodeError(resp))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", fmt.Errorf("client result %q: %w", id, err)
	}
	return data, resp.Header.Get("Content-Type"), nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	s := &Stats{}
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Wait polls a job until it reaches a terminal state (or ctx expires).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("client wait %q: %w", id, ctx.Err())
		case <-t.C:
		}
	}
}
