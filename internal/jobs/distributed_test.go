package jobs

// Distributed job specs: a Nodes>=1 spec runs the whole fused pipeline
// through internal/cluster, stays byte-identical to the direct run, keeps
// every temp blob inside jobs/<id>/, and surfaces the cluster report on
// /v1/stats. Impossible distributed specs are rejected at admission.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"persona"
)

// TestDistributedJob: a 2-node WGS job completes DONE with a result
// byte-identical to the single-node direct pipeline, sweeps its shuffle
// namespace, and publishes the cluster report in manager stats.
func TestDistributedJob(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	want := directWGS(t, store, g)
	m, sess := newTestManager(t, store, g, nil)

	st, err := m.Submit("acme", Spec{
		Dataset: "ds", Align: true, Sort: "location", MarkDup: true,
		Format: "sam", Nodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("final = %s (%s), want DONE", fin.State, fin.Error)
	}
	res, data, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("distributed job SAM differs from direct run (%d vs %d bytes)", len(data), len(want))
	}
	// The run namespace (jobs/<id>/spill/...) was swept: only the result
	// blob remains, and nothing escaped into the global cluster/ prefix.
	names, err := store.List("jobs/" + st.ID + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != res.ResultBlob {
		t.Fatalf("job namespace = %v, want only the result blob", names)
	}
	if stray, err := store.List("cluster/"); err != nil || len(stray) != 0 {
		t.Fatalf("cluster/ namespace = %v err=%v, want empty", stray, err)
	}
	cl := m.Stats().Cluster
	if cl == nil {
		t.Fatal("Stats().Cluster = nil after a distributed job")
	}
	if cl.Partitions != 2 || len(cl.Nodes) != 2 {
		t.Fatalf("cluster report: %d partitions over %d nodes, want 2 over 2", cl.Partitions, len(cl.Nodes))
	}
	if cl.Degraded {
		t.Error("healthy distributed job reported degraded")
	}
	if cl.ShuffleBytes == 0 {
		t.Error("ShuffleBytes = 0, want bytes crossing the shuffle")
	}
	checkNoLeak(t, sess)
}

// TestDistributedSpecRejections: negative node counts and sortless
// distributed specs are permanent admission errors — the shuffle is the
// sort, so a distributed job without one cannot run.
func TestDistributedSpecRejections(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	m, _ := newTestManager(t, store, g, nil)

	cases := []struct {
		name string
		spec Spec
	}{
		{"negative nodes", Spec{Dataset: "ds", Align: true, Sort: "location", Format: "sam", Nodes: -1}},
		{"distributed without sort", Spec{Dataset: "ds", Align: true, Format: "sam", Nodes: 2}},
	}
	for _, tc := range cases {
		_, err := m.Submit("acme", tc.spec)
		if !errors.Is(err, ErrBadSpec) {
			t.Fatalf("%s: err = %v, want ErrBadSpec", tc.name, err)
		}
		if IsTransient(err) {
			t.Fatalf("%s: classified transient", tc.name)
		}
		if status, _ := HTTPStatus(err); status != 400 {
			t.Fatalf("%s: status = %d, want 400", tc.name, status)
		}
	}
}
