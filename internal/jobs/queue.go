package jobs

import (
	"fmt"
	"sync"
)

// fairQueue is the admission-controlled dispatch queue: per-tenant FIFOs
// served by weighted round-robin. A tenant with weight w gets up to w
// consecutive dispatches per turn of the ring, so under contention tenants
// share workers in proportion to weight; an idle tenant's turn is skipped
// (the scheduler is work-conserving, never idling a worker to enforce
// fairness). Admission is atomic with the budget check, so concurrent
// submits cannot over-admit past the depth or byte budgets.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantQ
	ring     []string // tenant names in first-seen order
	cur      int      // ring index currently holding the turn
	credit   int      // dispatches left in the current turn
	queued   int
	qBytes   int64
	closed   bool
	weightOf func(tenant string) int
}

type tenantQ struct {
	weight int
	jobs   []*job
}

func newFairQueue(weightOf func(string) int) *fairQueue {
	q := &fairQueue{tenants: make(map[string]*tenantQ), weightOf: weightOf}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tenant returns (creating if needed) a tenant's queue and ring slot.
func (q *fairQueue) tenant(name string) *tenantQ {
	tq, ok := q.tenants[name]
	if !ok {
		w := q.weightOf(name)
		if w < 1 {
			w = 1
		}
		tq = &tenantQ{weight: w}
		q.tenants[name] = tq
		q.ring = append(q.ring, name)
		if len(q.ring) == 1 {
			q.credit = w
		}
	}
	return tq
}

// tryAdmit atomically checks the budgets and enqueues: either the job is
// admitted and counted, or a classified rejection comes back. Called with
// the job already journaled PENDING; on rejection the caller unwinds the
// journal record.
func (q *fairQueue) tryAdmit(j *job, maxQueued int, maxBytes int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("admit %q: %w", j.rec.ID, ErrDraining)
	}
	if maxQueued > 0 && q.queued+1 > maxQueued {
		return fmt.Errorf("admit %q: queue depth %d at budget %d: %w", j.rec.ID, q.queued, maxQueued, ErrOverloaded)
	}
	if maxBytes > 0 && q.qBytes+j.rec.EstBytes > maxBytes {
		return fmt.Errorf("admit %q: queued bytes %d + %d over budget %d: %w", j.rec.ID, q.qBytes, j.rec.EstBytes, maxBytes, ErrOverloaded)
	}
	q.enqueueLocked(j)
	return nil
}

// push enqueues bypassing the budgets — recovery re-admits jobs that were
// already accepted in a previous life, and retry requeues return a job the
// budget still counts. Reports false when the queue is closed (drain): the
// job stays journaled PENDING for the next incarnation.
func (q *fairQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.enqueueLocked(j)
	return true
}

func (q *fairQueue) enqueueLocked(j *job) {
	tq := q.tenant(j.rec.Tenant)
	tq.jobs = append(tq.jobs, j)
	q.queued++
	q.qBytes += j.rec.EstBytes
	q.cond.Signal()
}

// pop blocks for the next job in weighted round-robin order, returning nil
// once the queue closes. The closed check comes first: a drain must not
// start queued jobs — they stay journaled PENDING for the next incarnation,
// while already-claimed jobs run to completion. Workers exit on nil.
func (q *fairQueue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil
		}
		if j := q.nextLocked(); j != nil {
			q.queued--
			q.qBytes -= j.rec.EstBytes
			return j
		}
		q.cond.Wait()
	}
}

// nextLocked picks the next job by WRR: serve the turn-holding tenant while
// it has credit and work, otherwise advance the turn (a fresh turn always
// has credit, so one full scan of the ring visits every tenant).
func (q *fairQueue) nextLocked() *job {
	n := len(q.ring)
	if n == 0 || q.queued == 0 {
		return nil
	}
	for scanned := 0; scanned < n; scanned++ {
		tq := q.tenants[q.ring[q.cur]]
		if q.credit > 0 && len(tq.jobs) > 0 {
			j := tq.jobs[0]
			tq.jobs = tq.jobs[1:]
			q.credit--
			if q.credit == 0 || len(tq.jobs) == 0 {
				q.advanceLocked()
			}
			return j
		}
		q.advanceLocked()
	}
	return nil
}

func (q *fairQueue) advanceLocked() {
	q.cur = (q.cur + 1) % len(q.ring)
	q.credit = q.tenants[q.ring[q.cur]].weight
}

// load reports the queued depth and byte estimate under budget.
func (q *fairQueue) load() (depth int, bytes int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued, q.qBytes
}

// close stops admission and wakes every blocked worker; queued jobs stay
// queued (drain lets in-flight work finish; queued work stays journaled
// PENDING for the next incarnation).
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
