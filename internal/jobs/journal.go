package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"persona/internal/agd"
	"persona/internal/storage"
)

// Journal is the write-ahead job log: one JSON blob per job under
// ".jobs/journal/<id>", rewritten atomically at every state transition
// (DirStore Puts are temp-file + rename + fsync, so a crash mid-transition
// leaves the previous record intact, never a torn one). A clean-shutdown
// marker distinguishes an orderly drain from a crash at the next boot.
//
// The journal shares the session's store on purpose: the durability domain
// of the job states is exactly the durability domain of the job outputs,
// so "journal says DONE" implies the result blob survived the same crash.
type Journal struct {
	store storage.Store
}

const (
	journalPrefix = ".jobs/journal/"
	cleanMarker   = ".jobs/clean"
)

// NewJournal opens the journal namespace on a store.
func NewJournal(store storage.Store) *Journal { return &Journal{store: store} }

// Put durably records a job's current state. The store's atomic Put is the
// commit point: after it returns, a restart replays this state.
func (j *Journal) Put(rec *Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal put %q: %w", rec.ID, err)
	}
	if err := j.store.Put(journalPrefix+rec.ID, data); err != nil {
		return fmt.Errorf("journal put %q: %w", rec.ID, err)
	}
	return nil
}

// Delete removes a job's journal record (used to unwind an admission whose
// enqueue lost a race with drain or a budget refill).
func (j *Journal) Delete(id string) error {
	if err := j.store.Delete(journalPrefix + id); err != nil {
		return fmt.Errorf("journal delete %q: %w", id, err)
	}
	return nil
}

// Load replays the journal, returning every record ordered by job ID (IDs
// are zero-padded sequence numbers, so lexicographic order is submission
// order). Records that fail to load or parse are skipped with their error
// collected — one corrupt record must not wedge recovery of the rest.
func (j *Journal) Load() (recs []*Record, errs []error, err error) {
	names, err := j.store.List(journalPrefix)
	if err != nil {
		return nil, nil, fmt.Errorf("journal load: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := j.store.Get(name)
		if err != nil {
			errs = append(errs, fmt.Errorf("journal load %q: %w", name, err))
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(data, rec); err != nil {
			errs = append(errs, fmt.Errorf("journal load %q: %w", name, err))
			continue
		}
		if rec.ID == "" || !strings.HasSuffix(name, rec.ID) {
			errs = append(errs, fmt.Errorf("journal load %q: record names itself %q", name, rec.ID))
			continue
		}
		recs = append(recs, rec)
	}
	return recs, errs, nil
}

// WriteCleanMarker records an orderly shutdown: every worker has stopped
// and all journal records are at rest.
func (j *Journal) WriteCleanMarker(at time.Time) error {
	data, _ := json.Marshal(map[string]string{"shutdown_at": at.UTC().Format(time.RFC3339Nano)})
	if err := j.store.Put(cleanMarker, data); err != nil {
		return fmt.Errorf("journal clean-marker: %w", err)
	}
	return nil
}

// TakeCleanMarker consumes the clean-shutdown marker: reports whether the
// previous process exited cleanly and removes the marker so the current
// incarnation must earn its own.
func (j *Journal) TakeCleanMarker() (clean bool, err error) {
	_, err = j.store.Get(cleanMarker)
	if errors.Is(err, agd.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("journal clean-marker: %w", err)
	}
	if err := j.store.Delete(cleanMarker); err != nil {
		return true, fmt.Errorf("journal clean-marker: %w", err)
	}
	return true, nil
}
