package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"persona"
	"persona/internal/agd"
)

// Config configures a Manager. Zero values pick the defaults noted per
// field; negative budgets mean unlimited.
type Config struct {
	// Store holds the journal and every job's blobs — normally the same
	// store the Session reads datasets from, so job states and job outputs
	// share one durability domain (required).
	Store persona.Store
	// Session is the warm runtime jobs execute on (required).
	Session *persona.Session
	// Reference is the genome Align jobs index against; nil servers reject
	// align specs at admission.
	Reference *persona.Genome
	// Workers is how many jobs run concurrently (default 2).
	Workers int
	// MaxQueued bounds the dispatch queue depth (default 64); past it,
	// submissions shed with ErrOverloaded rather than queue unboundedly.
	MaxQueued int
	// MaxQueuedBytes bounds the estimated bytes queued (default 256 MiB).
	MaxQueuedBytes int64
	// BytesPerRecord scales a dataset's record count into the byte estimate
	// admission charges against MaxQueuedBytes (default 256).
	BytesPerRecord int64
	// MaxAttempts is each job's dispatch budget: transient failures requeue
	// until it is spent (default 3).
	MaxAttempts int
	// DefaultDeadline caps an attempt's wall time when the spec does not
	// (default 2m).
	DefaultDeadline time.Duration
	// RetryBase/RetryMax shape the exponential backoff between a job's
	// attempts (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// TenantWeights sets per-tenant dispatch weights for the fair-share
	// queue; unlisted tenants weigh 1.
	TenantWeights map[string]int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 64
	}
	if c.MaxQueuedBytes == 0 {
		c.MaxQueuedBytes = 256 << 20
	}
	if c.BytesPerRecord <= 0 {
		c.BytesPerRecord = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
}

// job is a Record plus its in-process run state.
type job struct {
	rec    Record
	prog   *persona.Progress  // live per-stage counters of the current attempt
	cancel context.CancelFunc // cancels the in-flight attempt (drain grace expiry)
}

// TenantStats is one tenant's cumulative accounting.
type TenantStats struct {
	Weight     int   `json:"weight"`
	Submitted  int64 `json:"submitted"`
	Rejected   int64 `json:"rejected"`
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Requeued   int64 `json:"requeued"`
}

// Stats is a point-in-time view of the service.
type Stats struct {
	Queued      int                    `json:"queued"`
	QueuedBytes int64                  `json:"queued_bytes"`
	Running     int                    `json:"running"`
	Jobs        int                    `json:"jobs"`
	Draining    bool                   `json:"draining"`
	Tenants     map[string]TenantStats `json:"tenants"`
	// Cache is the session chunk cache's cumulative counters (nil when the
	// session runs without a cache) — how much of the fleet's read traffic
	// repeat jobs are absorbing.
	Cache *persona.CacheStats `json:"cache,omitempty"`
	// Cluster is the most recent distributed job's cluster report (nil until
	// a Nodes >= 1 job completes a run).
	Cluster *persona.ClusterReport `json:"cluster,omitempty"`
}

// RecoveryReport summarizes a journal replay at boot.
type RecoveryReport struct {
	// CleanShutdown reports the previous incarnation drained cleanly.
	CleanShutdown bool `json:"clean_shutdown"`
	// Finished journal records were already terminal (kept queryable).
	Finished int `json:"finished"`
	// Interrupted jobs were journaled RUNNING — the previous process died
	// mid-attempt. They requeue (attempt preserved) or fail if the budget
	// is spent.
	Interrupted int `json:"interrupted"`
	// Requeued counts jobs put back on the dispatch queue (interrupted and
	// never-started PENDING records).
	Requeued int `json:"requeued"`
	// Corrupt counts journal records skipped as unreadable.
	Corrupt int `json:"corrupt"`
}

// dispatchLogCap bounds the recent-dispatch ring kept for fairness tests
// and the stats endpoint.
const dispatchLogCap = 256

// Manager is the job engine: admission control, durable journaling, fair
// dispatch, retry, drain and crash recovery over one persona.Session. The
// lifecycle is single-use: NewManager → Recover (replay the journal) →
// Start → serve → Drain or Kill.
type Manager struct {
	cfg     Config
	journal *Journal
	q       *fairQueue

	runCtx  context.Context // parent of every attempt; Kill cancels it
	stopRun context.CancelFunc
	killed  atomic.Bool

	mu          sync.Mutex
	seq         uint64
	jobs        map[string]*job
	order       []string // job IDs in submission order
	running     int
	draining    bool
	tenants     map[string]*TenantStats
	dispatchLog []string
	lastCluster *persona.ClusterReport

	wg sync.WaitGroup
}

// NewManager builds a Manager; it serves nothing until Start.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Store == nil || cfg.Session == nil {
		return nil, fmt.Errorf("jobs: config needs Store and Session")
	}
	cfg.fill()
	m := &Manager{
		cfg:     cfg,
		journal: NewJournal(cfg.Store),
		jobs:    make(map[string]*job),
		tenants: make(map[string]*TenantStats),
	}
	m.q = newFairQueue(func(tenant string) int { return cfg.TenantWeights[tenant] })
	m.runCtx, m.stopRun = context.WithCancel(context.Background())
	return m, nil
}

// tenantStats returns (creating) a tenant's counters; callers hold mu.
func (m *Manager) tenantStats(tenant string) *TenantStats {
	ts, ok := m.tenants[tenant]
	if !ok {
		w := m.cfg.TenantWeights[tenant]
		if w < 1 {
			w = 1
		}
		ts = &TenantStats{Weight: w}
		m.tenants[tenant] = ts
	}
	return ts
}

// Recover replays the journal before Start: terminal records stay
// queryable, PENDING records requeue, and RUNNING records — the mark of a
// crash mid-attempt — requeue with their attempt count preserved (the
// crashed claim spent one) or fail permanently if the budget is gone.
// Re-running an interrupted job is safe because its every blob lives under
// jobs/<id>/, swept at dispatch.
func (m *Manager) Recover() (RecoveryReport, error) {
	recs, loadErrs, err := m.journal.Load()
	if err != nil {
		return RecoveryReport{}, fmt.Errorf("recover: %w", err)
	}
	clean, _ := m.journal.TakeCleanMarker()
	// A store with no journal at all is a first boot, not a crash.
	if len(recs) == 0 && len(loadErrs) == 0 {
		clean = true
	}
	rep := RecoveryReport{CleanShutdown: clean, Corrupt: len(loadErrs)}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range recs {
		j := &job{rec: *rec}
		m.jobs[rec.ID] = j
		m.order = append(m.order, rec.ID)
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		ts := m.tenantStats(rec.Tenant)
		ts.Submitted++
		switch rec.State {
		case StateDone, StateFailed:
			rep.Finished++
		case StateRunning:
			rep.Interrupted++
			if rec.Attempts >= rec.MaxAttempts {
				j.rec.State = StateFailed
				j.rec.FinishedAt = time.Now().UTC()
				j.rec.Error = "interrupted by crash with attempt budget spent: " + j.rec.Error
				ts.Failed++
				cp := j.rec
				m.journal.Put(&cp)         // best effort: re-derived next boot
				m.sweep(jobPrefix(rec.ID)) // orphaned partial blobs
				rep.Finished++
				continue
			}
			j.rec.State = StatePending
			cp := j.rec
			if err := m.journal.Put(&cp); err != nil {
				return rep, fmt.Errorf("recover %q: %w", rec.ID, err)
			}
			m.q.push(j)
			rep.Requeued++
		case StatePending:
			m.q.push(j)
			rep.Requeued++
		}
	}
	return rep, nil
}

// Start launches the worker pool.
func (m *Manager) Start() {
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.q.pop()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// admitCheck validates the spec against the dataset's manifest and returns
// the byte estimate admission charges against the queue budget. Spec
// impossibilities are rejected here as ErrBadSpec (400) instead of burning
// a worker attempt on a guaranteed validation failure.
func (m *Manager) admitCheck(spec Spec) (int64, error) {
	ds, err := persona.OpenDataset(m.cfg.Store, spec.Dataset)
	if err != nil {
		return 0, fmt.Errorf("submit: %w", err)
	}
	hasResults := ds.Manifest.HasColumn(agd.ColResults)
	if spec.Align && hasResults {
		return 0, fmt.Errorf("submit: dataset %q is already aligned: %w", spec.Dataset, ErrBadSpec)
	}
	if spec.Align && m.cfg.Reference == nil {
		return 0, fmt.Errorf("submit: server has no reference genome for align: %w", ErrBadSpec)
	}
	if !spec.Align && spec.needsAlignment() && !hasResults {
		return 0, fmt.Errorf("submit: spec needs alignment results but dataset %q has none (set align): %w", spec.Dataset, ErrBadSpec)
	}
	return int64(ds.Manifest.NumRecords()) * m.cfg.BytesPerRecord, nil
}

// Submit admits a job: validate, estimate, journal PENDING (the durable
// acknowledgment point — once Submit returns, a crash cannot lose the job),
// then enqueue atomically against the admission budgets. Budget rejections
// unwind the journal record and surface as ErrOverloaded (429) or
// ErrDraining (503).
func (m *Manager) Submit(tenant string, spec Spec) (*JobStatus, error) {
	if tenant == "" {
		tenant = "default"
	}
	reject := func(err error) (*JobStatus, error) {
		m.mu.Lock()
		m.tenantStats(tenant).Rejected++
		m.mu.Unlock()
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return reject(fmt.Errorf("submit: %w", err))
	}
	est, err := m.admitCheck(spec)
	if err != nil {
		return reject(err)
	}

	m.mu.Lock()
	if m.draining {
		m.tenantStats(tenant).Rejected++
		m.mu.Unlock()
		return nil, fmt.Errorf("submit: %w", ErrDraining)
	}
	m.seq++
	id := fmt.Sprintf("j%08d", m.seq)
	j := &job{rec: Record{
		ID:          id,
		Tenant:      tenant,
		Spec:        spec,
		State:       StatePending,
		MaxAttempts: m.cfg.MaxAttempts,
		EstBytes:    est,
		SubmittedAt: time.Now().UTC(),
	}}
	m.jobs[id] = j
	m.order = append(m.order, id)
	ts := m.tenantStats(tenant)
	ts.Submitted++
	rec := j.rec
	m.mu.Unlock()

	unwind := func() {
		m.mu.Lock()
		delete(m.jobs, id)
		if n := len(m.order); n > 0 && m.order[n-1] == id {
			m.order = m.order[:n-1]
		}
		ts.Submitted--
		ts.Rejected++
		m.mu.Unlock()
	}
	if err := m.journal.Put(&rec); err != nil {
		unwind()
		return nil, fmt.Errorf("submit: %w", err)
	}
	if err := m.q.tryAdmit(j, m.cfg.MaxQueued, m.cfg.MaxQueuedBytes); err != nil {
		unwind()
		m.journal.Delete(id) // best effort; a leftover PENDING re-runs idempotently
		return nil, fmt.Errorf("submit: %w", err)
	}
	st := &JobStatus{Record: rec}
	return st, nil
}

// runJob is one attempt: journal the RUNNING claim, sweep the job's blob
// namespace (idempotent re-run), execute the pipeline, then classify the
// outcome into DONE, FAILED, a backoff requeue, or a drain checkpoint.
func (m *Manager) runJob(j *job) {
	if m.killed.Load() {
		return
	}
	m.mu.Lock()
	j.rec.State = StateRunning
	j.rec.Attempts++
	j.rec.StartedAt = time.Now().UTC()
	j.rec.Error, j.rec.Transient = "", false
	deadline := m.cfg.DefaultDeadline
	if j.rec.Spec.DeadlineMS > 0 {
		deadline = time.Duration(j.rec.Spec.DeadlineMS) * time.Millisecond
	}
	jctx, cancel := context.WithTimeout(m.runCtx, deadline)
	j.cancel = cancel
	j.prog = persona.NewProgress()
	m.running++
	ts := m.tenantStats(j.rec.Tenant)
	ts.Dispatched++
	m.dispatchLog = append(m.dispatchLog, j.rec.Tenant)
	if len(m.dispatchLog) > dispatchLogCap {
		m.dispatchLog = m.dispatchLog[len(m.dispatchLog)-dispatchLogCap:]
	}
	rec := j.rec
	m.mu.Unlock()
	defer func() {
		cancel()
		m.mu.Lock()
		m.running--
		j.cancel = nil
		m.mu.Unlock()
	}()

	// Write-ahead: the attempt claim is durable before any job blob is
	// touched, so a crash from here on is seen as an interrupted RUNNING job.
	if err := m.journalPut(&rec); err != nil {
		m.finish(j, jctx, nil, err)
		return
	}
	if err := m.sweep(jobPrefix(rec.ID)); err != nil {
		m.finish(j, jctx, nil, fmt.Errorf("run %q: %w", rec.ID, err))
		return
	}
	res, err := m.execute(jctx, j.prog, rec)
	m.finish(j, jctx, res, err)
}

// execute builds and runs the spec's pipeline. Every blob the run writes —
// spills, the result blob, the output dataset — lands under jobs/<id>/.
func (m *Manager) execute(ctx context.Context, prog *persona.Progress, rec Record) (*ResultMeta, error) {
	spec := rec.Spec
	sess := m.cfg.Session
	p := sess.Read(spec.Dataset)
	if spec.Align {
		if m.cfg.Reference == nil {
			return nil, fmt.Errorf("run %q: server has no reference genome: %w", rec.ID, ErrBadSpec)
		}
		idx, err := sess.Index(m.cfg.Reference)
		if err != nil {
			return nil, fmt.Errorf("run %q: %w", rec.ID, err)
		}
		p.Align(idx, persona.AlignOptions{MaxDist: spec.MaxDist})
	}
	switch spec.Sort {
	case "location":
		p.Sort(persona.ByLocation)
	case "metadata":
		p.Sort(persona.ByMetadata)
	}
	if spec.MarkDup {
		p.MarkDuplicates()
	}
	var preds []persona.FilterPredicate
	if spec.MappedOnly {
		preds = append(preds, persona.FilterMappedOnly())
	}
	if spec.MinMapQ > 0 {
		preds = append(preds, persona.FilterMinMapQ(uint8(spec.MinMapQ)))
	}
	if spec.Dedup {
		preds = append(preds, persona.FilterDropDuplicates())
	}
	if len(preds) > 0 {
		p.Filter(persona.FilterAnd(preds...))
	}
	var buf bytes.Buffer
	export := true
	switch spec.Format {
	case "sam":
		p.ExportSAM(&buf)
	case "bam":
		p.ExportBAM(&buf)
	case "fastq":
		p.ExportFASTQ(&buf)
	case "dataset":
		export = false
		p.Write(outDataset(rec.ID))
	}
	p.TempPrefix(spillPrefix(rec.ID)).Observe(prog)
	if spec.EdgeDepth > 0 {
		p.EdgeDepth(spec.EdgeDepth)
	}
	if spec.Nodes >= 1 {
		p.Distributed(spec.Nodes)
	}

	report, err := p.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("run %q: %w", rec.ID, err)
	}
	if report.Cluster != nil {
		m.mu.Lock()
		m.lastCluster = report.Cluster
		m.mu.Unlock()
	}
	res := &ResultMeta{
		Records: report.Records,
		Elapsed: report.Elapsed,
		Storage: report.Storage,
	}
	for _, st := range report.Stages {
		res.Stages = append(res.Stages, StageMeta{
			Stage: st.Stage, Records: st.Records, Groups: st.Groups, Elapsed: st.Elapsed,
		})
	}
	if export {
		if err := m.cfg.Store.Put(resultBlob(rec.ID), buf.Bytes()); err != nil {
			return nil, fmt.Errorf("run %q: %w", rec.ID, err)
		}
		res.ResultBlob = resultBlob(rec.ID)
		res.ResultBytes = int64(buf.Len())
	} else {
		res.OutDataset = outDataset(rec.ID)
	}
	return res, nil
}

// finish classifies an attempt's outcome and journals the transition. On a
// kill, nothing is journaled — the journal keeps the RUNNING claim, exactly
// the state a real process death leaves behind. jctx is the attempt's
// context: a drain checkpoint is detected by the context being cancelled
// (not deadline-expired) while draining, since a torn-down pipeline does
// not reliably surface context.Canceled itself.
func (m *Manager) finish(j *job, jctx context.Context, res *ResultMeta, err error) {
	if m.killed.Load() {
		return
	}
	now := time.Now().UTC()
	var requeueAfter time.Duration

	m.mu.Lock()
	ts := m.tenantStats(j.rec.Tenant)
	switch {
	case err == nil:
		j.rec.State = StateDone
		j.rec.FinishedAt = now
		j.rec.Result = res
		j.rec.Error, j.rec.Transient = "", false
		ts.Completed++
	case m.draining && errors.Is(jctx.Err(), context.Canceled):
		// Checkpointing drain: the grace window expired and cancelled the
		// attempt. Roll the claim back — the interrupted attempt does not
		// count against the budget — and leave the job PENDING for the next
		// incarnation (the queue is closed, so no requeue here).
		j.rec.State = StatePending
		j.rec.Attempts--
		j.rec.Error = "checkpointed by drain: " + err.Error()
		j.rec.Transient = true
		ts.Requeued++
	case IsTransient(err) && j.rec.Attempts < j.rec.MaxAttempts:
		j.rec.State = StatePending
		j.rec.Error = err.Error()
		j.rec.Transient = true
		ts.Requeued++
		requeueAfter = m.backoff(j.rec.Attempts)
	default:
		j.rec.State = StateFailed
		j.rec.FinishedAt = now
		j.rec.Error = err.Error()
		j.rec.Transient = IsTransient(err)
		ts.Failed++
	}
	rec := j.rec
	m.mu.Unlock()

	// Best effort: if this journal write is lost to a crash, the job replays
	// from its RUNNING claim and re-runs idempotently.
	m.journalPut(&rec)
	if requeueAfter > 0 {
		time.AfterFunc(requeueAfter, func() {
			// push fails only when the queue closed (drain/kill): the job
			// stays journaled PENDING for the next incarnation.
			m.q.push(j)
		})
	}
}

// backoff returns the delay before attempt n+1: RetryBase doubled per spent
// attempt, capped at RetryMax.
func (m *Manager) backoff(attempts int) time.Duration {
	d := m.cfg.RetryBase
	for i := 1; i < attempts && d < m.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > m.cfg.RetryMax {
		d = m.cfg.RetryMax
	}
	return d
}

// journalPut writes a transition unless the manager is killed (a killed
// process writes nothing — that is the point of the chaos hook).
func (m *Manager) journalPut(rec *Record) error {
	if m.killed.Load() {
		return nil
	}
	return m.journal.Put(rec)
}

// sweep deletes every blob under prefix — the idempotence lever that makes
// re-running an interrupted job safe.
func (m *Manager) sweep(prefix string) error {
	names, err := m.cfg.Store.List(prefix + "/")
	if err != nil {
		return fmt.Errorf("sweep %q: %w", prefix, err)
	}
	for _, name := range names {
		if err := m.cfg.Store.Delete(name); err != nil {
			return fmt.Errorf("sweep %q: %w", prefix, err)
		}
	}
	return nil
}

// Status returns a job's record plus, for an in-flight attempt, the live
// per-stage progress of its pipeline.
func (m *Manager) Status(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("status %q: %w", id, ErrUnknownJob)
	}
	st := &JobStatus{Record: j.rec}
	prog := j.prog
	m.mu.Unlock()
	if prog != nil {
		st.Progress = prog.Snapshot()
	}
	return st, nil
}

// Jobs lists every known job in submission order, optionally filtered by
// tenant.
func (m *Manager) Jobs(tenant string) []*JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*JobStatus, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		if tenant != "" && j.rec.Tenant != tenant {
			continue
		}
		out = append(out, &JobStatus{Record: j.rec})
	}
	return out
}

// Result fetches a DONE job's exported bytes (or, for dataset-format jobs,
// no bytes — the ResultMeta names the output dataset).
func (m *Manager) Result(id string) (*ResultMeta, []byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, nil, fmt.Errorf("result %q: %w", id, ErrUnknownJob)
	}
	state, res := j.rec.State, j.rec.Result
	lastErr := j.rec.Error
	m.mu.Unlock()
	if state != StateDone || res == nil {
		if state == StateFailed {
			return nil, nil, fmt.Errorf("result %q: job failed: %s: %w", id, lastErr, ErrNotDone)
		}
		return nil, nil, fmt.Errorf("result %q: state %s: %w", id, state, ErrNotDone)
	}
	if res.ResultBlob == "" {
		return res, nil, nil
	}
	data, err := m.cfg.Store.Get(res.ResultBlob)
	if err != nil {
		return nil, nil, fmt.Errorf("result %q: %w", id, err)
	}
	return res, data, nil
}

// Stats snapshots the service counters.
func (m *Manager) Stats() Stats {
	depth, qbytes := m.q.load()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Queued:      depth,
		QueuedBytes: qbytes,
		Running:     m.running,
		Jobs:        len(m.jobs),
		Draining:    m.draining,
		Tenants:     make(map[string]TenantStats, len(m.tenants)),
	}
	for name, ts := range m.tenants {
		s.Tenants[name] = *ts
	}
	if cs, ok := m.cfg.Session.CacheStats(); ok {
		s.Cache = &cs
	}
	s.Cluster = m.lastCluster
	return s
}

// FlushCache empties the session's chunk cache and cached manifests — the
// admin escape hatch after out-of-band store mutation. Returns what was
// dropped.
func (m *Manager) FlushCache() (entries int, bytes int64) {
	return m.cfg.Session.FlushCache()
}

// DispatchOrder returns the recent tenant dispatch sequence (most recent
// last, bounded) — what fairness tests assert weighted interleaving on.
func (m *Manager) DispatchOrder() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.dispatchLog))
	copy(out, m.dispatchLog)
	return out
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain shuts down gracefully: admission stops (submissions get
// ErrDraining), queued jobs stay journaled PENDING, and in-flight jobs get
// until ctx expires to finish — then their attempts are cancelled and
// checkpointed back to PENDING with no budget charge. When every worker has
// stopped, a clean-shutdown marker is journaled so the next incarnation
// knows the journal is at rest.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.draining = true
	m.mu.Unlock()

	m.q.close()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: checkpoint in-flight attempts via their contexts.
		m.mu.Lock()
		for _, id := range m.order {
			if c := m.jobs[id].cancel; c != nil {
				c()
			}
		}
		m.mu.Unlock()
		<-done
	}
	if m.killed.Load() {
		return fmt.Errorf("drain: %w", ErrDraining)
	}
	return m.journal.WriteCleanMarker(time.Now())
}

// Kill simulates a hard process death (SIGKILL) for chaos tests: all
// journal writes stop instantly, every in-flight attempt's context is
// cancelled, and workers are joined so the process's goroutines unwind —
// but the journal is left exactly as a real kill would leave it (RUNNING
// claims in place, no clean marker). In-process resources (chunk pools)
// still drain, which is what the leak checks assert.
func (m *Manager) Kill() {
	m.killed.Store(true)
	m.q.close()
	m.stopRun()
	m.wg.Wait()
}
