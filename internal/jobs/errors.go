package jobs

import (
	"errors"
	"time"

	"persona/internal/agd"
	"persona/internal/cluster"
	"persona/internal/storage"
)

// Sentinel errors of the job layer. Wrapped errors follow the repo
// convention (`op %q: %w`), so callers classify with errors.Is and the
// IsTransient/IsPermanent helpers below, and the HTTP layer derives status
// codes from classification rather than from string matching.
var (
	// ErrOverloaded rejects a submission past the admission budget (queue
	// depth or in-flight byte estimate). Transient: retry after backing off.
	ErrOverloaded = errors.New("jobs: over admission budget")
	// ErrDraining rejects a submission while the server is shutting down.
	// Transient from the client's point of view: retry against a live server.
	ErrDraining = errors.New("jobs: server draining")
	// ErrUnknownJob is returned for job IDs the journal has never seen.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrBadSpec rejects a submission whose spec cannot ever run. Permanent.
	ErrBadSpec = errors.New("jobs: invalid job spec")
	// ErrNotDone is returned when a result is fetched before the job is DONE.
	ErrNotDone = errors.New("jobs: job has no result yet")
)

// IsTransient reports whether err is worth retrying: admission rejections
// and everything the storage layer classifies as transient. Spec and lookup
// errors are permanent. Mirrors storage.IsTransient's contract: nil is not
// transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDraining) {
		return true
	}
	if errors.Is(err, ErrBadSpec) || errors.Is(err, ErrUnknownJob) || errors.Is(err, ErrNotDone) {
		return false
	}
	// A cluster abort means the run exhausted its per-chunk attempt budget
	// across workers — retrying the whole job would replay the same failures.
	if errors.Is(err, cluster.ErrAborted) {
		return false
	}
	return storage.IsTransient(err)
}

// IsPermanent reports whether err is classified as not worth retrying.
func IsPermanent(err error) bool { return err != nil && !IsTransient(err) }

// HTTPStatus maps a job-layer error onto an HTTP status code and, for
// transient rejections, a Retry-After hint (0 means no header). The mapping
// falls out of classification: load shedding is 429, drain and other
// transient faults are 503, permanent spec/lookup errors are 4xx.
func HTTPStatus(err error) (status int, retryAfter time.Duration) {
	switch {
	case err == nil:
		return 200, 0
	case errors.Is(err, ErrOverloaded):
		return 429, time.Second
	case errors.Is(err, ErrDraining):
		return 503, 5 * time.Second
	case errors.Is(err, ErrUnknownJob):
		return 404, 0
	case errors.Is(err, ErrNotDone):
		return 409, 0
	case errors.Is(err, ErrBadSpec):
		return 400, 0
	case errors.Is(err, agd.ErrNotFound):
		return 404, 0
	case errors.Is(err, cluster.ErrAborted):
		return 500, 0
	case IsTransient(err):
		return 503, 2 * time.Second
	default:
		return 500, 0
	}
}
