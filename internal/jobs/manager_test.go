package jobs

// Manager suite: the full job lifecycle over a real Session — durable
// admission, classified rejections, transient-failure retry, graceful drain
// with checkpointing, and weighted fair-share dispatch.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"persona"
)

// newTestManager builds a started manager over store with fast retries.
func newTestManager(t testing.TB, store persona.Store, g *persona.Genome, mut func(*Config)) (*Manager, *persona.Session) {
	t.Helper()
	sess := persona.NewSession(store, persona.SessionOptions{})
	t.Cleanup(sess.Close)
	cfg := Config{
		Store:     store,
		Session:   sess,
		Reference: g,
		Workers:   2,
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	m.Start()
	return m, sess
}

// TestJobLifecycle: a submitted WGS job runs to DONE with journaled
// transitions, live progress along the way, and a result byte-identical to
// the same pipeline run directly; every blob it wrote sits under jobs/<id>/.
func TestJobLifecycle(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	want := directWGS(t, store, g)
	m, sess := newTestManager(t, store, g, nil)

	st, err := m.Submit("acme", Spec{Dataset: "ds", Align: true, Sort: "location", MarkDup: true, Format: "sam"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending || st.ID == "" {
		t.Fatalf("submit status = %+v, want a PENDING id", st.Record)
	}
	fin := waitTerminal(t, m, st.ID, 30*time.Second)
	if fin.State != StateDone || fin.Attempts != 1 {
		t.Fatalf("final = %s after %d attempts (%s), want DONE in 1", fin.State, fin.Attempts, fin.Error)
	}
	if fin.Result == nil || fin.Result.Records == 0 || len(fin.Result.Stages) != 5 {
		t.Fatalf("result meta = %+v, want 5 stages and records", fin.Result)
	}
	if len(fin.Progress) != 5 {
		t.Fatalf("progress has %d stages, want 5", len(fin.Progress))
	}
	for _, sp := range fin.Progress {
		if !sp.Done {
			t.Fatalf("stage %s not marked done after completion", sp.Stage)
		}
	}
	res, data, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("job SAM differs from direct pipeline run (%d vs %d bytes)", len(data), len(want))
	}
	if res.ResultBlob != "jobs/"+st.ID+"/result" {
		t.Fatalf("result blob = %q", res.ResultBlob)
	}
	// The job's blob namespace holds exactly the result — spills cleaned up.
	names, err := store.List("jobs/" + st.ID + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != res.ResultBlob {
		t.Fatalf("job namespace = %v, want only the result blob", names)
	}
	checkNoLeak(t, sess)

	// The DONE record is journaled: a fresh manager over the same store
	// serves the result without re-running anything.
	m2, _ := newTestManager(t, store, g, nil)
	st2, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("replayed state = %s, want DONE", st2.State)
	}
	if _, data2, err := m2.Result(st.ID); err != nil || !bytes.Equal(data2, want) {
		t.Fatalf("replayed result fetch: %v", err)
	}
}

// TestSubmitClassifiedRejections: impossible specs and missing datasets are
// rejected at admission with permanent classifications and 4xx mappings —
// no worker attempt is burned.
func TestSubmitClassifiedRejections(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	m, _ := newTestManager(t, store, g, func(c *Config) { c.Reference = nil })

	cases := []struct {
		name   string
		spec   Spec
		sent   error
		status int
	}{
		{"missing dataset name", Spec{Format: "sam"}, ErrBadSpec, 400},
		{"bad format", Spec{Dataset: "ds", Format: "vcf"}, ErrBadSpec, 400},
		{"bad sort key", Spec{Dataset: "ds", Sort: "name", Format: "fastq"}, ErrBadSpec, 400},
		{"dedup without markdup", Spec{Dataset: "ds", Align: true, Dedup: true, Format: "sam"}, ErrBadSpec, 400},
		{"unknown dataset", Spec{Dataset: "nope", Format: "fastq"}, nil, 404},
		{"sam needs alignment", Spec{Dataset: "ds", Format: "sam"}, ErrBadSpec, 400},
		{"align without reference", Spec{Dataset: "ds", Align: true, Format: "sam"}, ErrBadSpec, 400},
	}
	for _, tc := range cases {
		_, err := m.Submit("acme", tc.spec)
		if err == nil {
			t.Fatalf("%s: submit succeeded", tc.name)
		}
		if tc.sent != nil && !errors.Is(err, tc.sent) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.sent)
		}
		if IsTransient(err) {
			t.Fatalf("%s: classified transient", tc.name)
		}
		if status, _ := HTTPStatus(err); status != tc.status {
			t.Fatalf("%s: status = %d, want %d", tc.name, status, tc.status)
		}
	}
	if got := m.Stats().Tenants["acme"].Rejected; got != int64(len(cases)) {
		t.Fatalf("rejected count = %d, want %d", got, len(cases))
	}
}

// TestTransientFailureRetries: a deterministic transient fault on the
// result write fails attempt 1; the job requeues with backoff and attempt 2
// succeeds, with the retry visible in the record and tenant accounting.
func TestTransientFailureRetries(t *testing.T) {
	inner := persona.NewMemStore()
	g := importTestDataset(t, inner, "ds")
	store := &failNStore{Store: inner, substr: "/result", n: 1}
	m, sess := newTestManager(t, store, g, nil)

	st, err := m.Submit("acme", Spec{Dataset: "ds", Format: "fastq"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("final = %s (%s), want DONE", fin.State, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one transient failure, one success)", fin.Attempts)
	}
	ts := m.Stats().Tenants["acme"]
	if ts.Requeued != 1 || ts.Completed != 1 || ts.Dispatched != 2 {
		t.Fatalf("tenant stats = %+v, want 1 requeue, 1 completion, 2 dispatches", ts)
	}
	checkNoLeak(t, sess)
}

// TestAttemptBudgetExhaustion: a fault that outlives the attempt budget
// fails the job permanently with the transient classification recorded.
func TestAttemptBudgetExhaustion(t *testing.T) {
	inner := persona.NewMemStore()
	g := importTestDataset(t, inner, "ds")
	store := &failNStore{Store: inner, substr: "/result", n: 100}
	m, _ := newTestManager(t, store, g, func(c *Config) { c.MaxAttempts = 2 })

	st, err := m.Submit("acme", Spec{Dataset: "ds", Format: "fastq"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID, 30*time.Second)
	if fin.State != StateFailed || fin.Attempts != 2 || !fin.Transient {
		t.Fatalf("final = %s after %d attempts (transient=%v), want FAILED after 2 transient", fin.State, fin.Attempts, fin.Transient)
	}
	if _, _, err := m.Result(st.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of failed job = %v, want ErrNotDone", err)
	}
}

// TestDrainCheckpointsInFlight: a drain whose grace expires cancels the
// in-flight attempt, rolls it back to PENDING with no budget charge, writes
// the clean-shutdown marker — and the next incarnation resumes the job to
// an identical result.
func TestDrainCheckpointsInFlight(t *testing.T) {
	inner := persona.NewMemStore()
	g := importTestDataset(t, inner, "ds")
	want := directWGS(t, inner, g)
	gate := make(chan struct{})
	gated := &gateStore{Store: inner, substr: "chunk-000002", gate: gate}
	m, sess := newTestManager(t, gated, g, func(c *Config) { c.Workers = 1 })

	st, err := m.Submit("acme", Spec{Dataset: "ds", Align: true, Sort: "location", MarkDup: true, Format: "sam"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "job to start", func() bool {
		cur, err := m.Status(st.ID)
		return err == nil && cur.State == StateRunning
	})
	st2, err := m.Submit("acme", Spec{Dataset: "ds", Format: "fastq"})
	if err != nil {
		t.Fatal(err) // queued behind the gated job; must survive the drain too
	}

	// Grace already expired: drain checkpoints immediately.
	drainCtx, cancel := context.WithCancel(context.Background())
	cancel()
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(drainCtx) }()
	time.Sleep(20 * time.Millisecond) // let the cancellation reach the pipeline
	close(gate)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("acme", Spec{Dataset: "ds", Format: "fastq"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	cur, err := m.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.State != StatePending || cur.Attempts != 0 {
		t.Fatalf("checkpointed job = %s after %d attempts, want PENDING with the attempt uncharged", cur.State, cur.Attempts)
	}
	waitNoLeak(t, sess)

	// Next incarnation: clean shutdown detected, both jobs resume and finish.
	sess2 := persona.NewSession(inner, persona.SessionOptions{})
	defer sess2.Close()
	m2, err := NewManager(Config{Store: inner, Session: sess2, Reference: g, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CleanShutdown || rep.Requeued != 2 {
		t.Fatalf("recovery = %+v, want clean shutdown with 2 requeued", rep)
	}
	m2.Start()
	fin := waitTerminal(t, m2, st.ID, 30*time.Second)
	if fin.State != StateDone || fin.Attempts != 1 {
		t.Fatalf("resumed job = %s after %d attempts (%s), want DONE in 1", fin.State, fin.Attempts, fin.Error)
	}
	if _, data, err := m2.Result(st.ID); err != nil || !bytes.Equal(data, want) {
		t.Fatalf("resumed result differs from baseline: %v", err)
	}
	if fin2 := waitTerminal(t, m2, st2.ID, 30*time.Second); fin2.State != StateDone {
		t.Fatalf("queued job after restart = %s (%s), want DONE", fin2.State, fin2.Error)
	}
	checkNoLeak(t, sess2)
}

// TestFairShareDispatchOrder: with one worker held busy, queued jobs from
// tenants weighted a=2, b=1 dispatch in the a,a,b weighted round-robin
// pattern, and the accounting reflects it.
func TestFairShareDispatchOrder(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	importTestDataset(t, store, "gate-ds")
	gate := make(chan struct{})
	gated := &gateStore{Store: store, substr: "gate-ds/chunk-000000", gate: gate}
	m, _ := newTestManager(t, gated, g, func(c *Config) {
		c.Workers = 1
		c.TenantWeights = map[string]int{"a": 2, "b": 1}
	})

	warm, err := m.Submit("warm", Spec{Dataset: "gate-ds", Format: "fastq"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "gate job to hold the worker", func() bool {
		cur, err := m.Status(warm.ID)
		return err == nil && cur.State == StateRunning
	})
	var last *JobStatus
	for i := 0; i < 4; i++ {
		if last, err = m.Submit("a", Spec{Dataset: "ds", Format: "fastq"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if last, err = m.Submit("b", Spec{Dataset: "ds", Format: "fastq"}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	waitTerminal(t, m, last.ID, 30*time.Second)
	waitFor(t, 30*time.Second, "all jobs to finish", func() bool {
		s := m.Stats()
		return s.Tenants["a"].Completed == 4 && s.Tenants["b"].Completed == 2
	})

	order := m.DispatchOrder()
	want := []string{"warm", "a", "a", "b", "a", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
	s := m.Stats()
	if s.Tenants["a"].Weight != 2 || s.Tenants["b"].Weight != 1 {
		t.Fatalf("tenant weights = %+v", s.Tenants)
	}
}
