package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// HTTP surface of the job service, mounted by cmd/persona-server:
//
//	POST /v1/jobs             submit a Spec (tenant via X-Persona-Tenant) → 202 JobStatus
//	GET  /v1/jobs             list jobs (optional ?tenant=)
//	GET  /v1/jobs/{id}        job status with live per-stage progress
//	GET  /v1/jobs/{id}/result a DONE job's exported bytes (or ResultMeta JSON)
//	GET  /v1/stats            service counters (incl. session cache stats)
//	POST /v1/cache/flush      drop the session chunk/manifest caches (admin)
//	GET  /v1/healthz          liveness (503 while draining)
//
// Error responses are JSON {"error": ...} with the status derived from the
// error's classification (HTTPStatus): load shedding is 429 with
// Retry-After, drain is 503 with Retry-After, bad specs are 400, unknown
// jobs 404, premature result fetches 409.

// TenantHeader carries the caller's tenant identity; absent means "default".
const TenantHeader = "X-Persona-Tenant"

// Handler mounts the service's HTTP API.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", m.handleResult)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	mux.HandleFunc("POST /v1/cache/flush", m.handleCacheFlush)
	mux.HandleFunc("GET /v1/healthz", m.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr renders an error with its classified status and Retry-After.
func writeErr(w http.ResponseWriter, err error) {
	status, retryAfter := HTTPStatus(err)
	if retryAfter > 0 {
		secs := int(retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("submit: decode body: %v: %w", err, ErrBadSpec))
		return
	}
	st, err := m.Submit(r.Header.Get(TenantHeader), spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Jobs(r.URL.Query().Get("tenant")))
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := m.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultContentType maps a job's sink format onto the response MIME type.
func resultContentType(format string) string {
	switch format {
	case "sam":
		return "text/x-sam"
	case "bam":
		return "application/octet-stream"
	case "fastq":
		return "text/x-fastq"
	}
	return "application/json"
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, data, err := m.Result(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if res.ResultBlob == "" {
		// dataset-format job: the result is a dataset in the store, not a
		// byte stream; serve its metadata.
		writeJSON(w, http.StatusOK, res)
		return
	}
	st, _ := m.Status(id)
	ct := "application/octet-stream"
	if st != nil {
		ct = resultContentType(st.Spec.Format)
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Stats())
}

func (m *Manager) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	entries, bytes := m.FlushCache()
	writeJSON(w, http.StatusOK, map[string]int64{
		"flushed_entries": int64(entries),
		"flushed_bytes":   bytes,
	})
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if m.Draining() {
		writeErr(w, fmt.Errorf("healthz: %w", ErrDraining))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
