package jobs

import (
	"fmt"
	"testing"

	"persona"
)

// BenchmarkServiceLoad saturates one warm Manager with concurrent tenants
// submitting full WGS jobs (align → sort → markdup → SAM) and reports
// service throughput and submit-to-done latency percentiles — the PERF.md
// "service under load" numbers. One iteration is one complete load run.
func BenchmarkServiceLoad(b *testing.B) {
	store := persona.NewMemStore()
	g := importTestDataset(b, store, "ds")
	spec := Spec{Dataset: "ds", Align: true, Sort: "location", MarkDup: true, Format: "sam"}
	for _, tenants := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			sess := persona.NewSession(store, persona.SessionOptions{})
			defer sess.Close()
			m, err := NewManager(Config{Store: store, Session: sess, Reference: g, Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Recover(); err != nil {
				b.Fatal(err)
			}
			m.Start()
			defer m.Drain(b.Context())
			b.ReportAllocs()
			b.ResetTimer()
			var last LoadResult
			for i := 0; i < b.N; i++ {
				res, err := RunLoad(b.Context(), m, LoadConfig{
					Tenants: tenants, JobsPerTenant: 8, Spec: spec,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != res.Jobs {
					b.Fatalf("only %d/%d jobs completed", res.Completed, res.Jobs)
				}
				last = res
			}
			b.ReportMetric(last.JobsPerS, "jobs/s")
			b.ReportMetric(float64(last.P50.Microseconds())/1e3, "p50-ms")
			b.ReportMetric(float64(last.P99.Microseconds())/1e3, "p99-ms")
		})
	}
}
