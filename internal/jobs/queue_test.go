package jobs

import (
	"errors"
	"testing"
	"time"
)

func qjob(id, tenant string, est int64) *job {
	return &job{rec: Record{ID: id, Tenant: tenant, EstBytes: est}}
}

func weights(m map[string]int) func(string) int {
	return func(t string) int { return m[t] }
}

// TestFairQueueWRROrder: with weights a=2, b=1 and both queues loaded, pops
// interleave a,a,b — weighted round-robin, not FIFO and not starvation.
func TestFairQueueWRROrder(t *testing.T) {
	q := newFairQueue(weights(map[string]int{"a": 2, "b": 1}))
	for i := 0; i < 4; i++ {
		q.push(qjob(string(rune('0'+i)), "a", 0))
	}
	for i := 0; i < 2; i++ {
		q.push(qjob(string(rune('4'+i)), "b", 0))
	}
	var order []string
	for i := 0; i < 6; i++ {
		order = append(order, q.pop().rec.Tenant)
	}
	want := []string{"a", "a", "b", "a", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueWorkConserving: an idle tenant's turn is skipped — a lone
// busy tenant gets every dispatch rather than idling the worker.
func TestFairQueueWorkConserving(t *testing.T) {
	q := newFairQueue(weights(map[string]int{"a": 1, "b": 5}))
	q.push(qjob("x", "b", 0)) // b enters the ring
	if got := q.pop().rec.Tenant; got != "b" {
		t.Fatalf("pop = %s, want b", got)
	}
	for i := 0; i < 3; i++ {
		q.push(qjob(string(rune('0'+i)), "a", 0))
	}
	for i := 0; i < 3; i++ {
		if got := q.pop().rec.Tenant; got != "a" {
			t.Fatalf("pop %d = %s while b idle, want a", i, got)
		}
	}
}

// TestFairQueueAdmissionBudgets: tryAdmit enforces depth and byte budgets
// atomically and classifies rejections.
func TestFairQueueAdmissionBudgets(t *testing.T) {
	q := newFairQueue(weights(nil))
	if err := q.tryAdmit(qjob("1", "a", 100), 2, 250); err != nil {
		t.Fatal(err)
	}
	if err := q.tryAdmit(qjob("2", "a", 100), 2, 250); err != nil {
		t.Fatal(err)
	}
	if err := q.tryAdmit(qjob("3", "a", 10), 2, 250); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("depth-budget reject = %v, want ErrOverloaded", err)
	}
	if err := q.tryAdmit(qjob("3", "a", 100), 3, 250); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("byte-budget reject = %v, want ErrOverloaded", err)
	}
	depth, bytes := q.load()
	if depth != 2 || bytes != 200 {
		t.Fatalf("load = %d jobs/%d bytes after rejections, want 2/200", depth, bytes)
	}
	// Dispatch frees budget.
	if q.pop() == nil {
		t.Fatal("pop returned nil with work queued")
	}
	if err := q.tryAdmit(qjob("3", "a", 100), 2, 250); err != nil {
		t.Fatalf("admit after dispatch freed budget: %v", err)
	}
}

// TestFairQueueCloseSemantics: close stops admission (ErrDraining), wakes
// blocked workers with nil, and refuses to hand out queued jobs — they stay
// journaled PENDING for the next incarnation.
func TestFairQueueCloseSemantics(t *testing.T) {
	q := newFairQueue(weights(nil))
	q.push(qjob("1", "a", 0))
	popped := make(chan *job, 1)
	go func() {
		q.pop() // consumes job 1
		popped <- q.pop()
	}()
	waitFor(t, time.Second, "first pop", func() bool { d, _ := q.load(); return d == 0 })
	q.close()
	if j := <-popped; j != nil {
		t.Fatalf("pop after close = %v, want nil", j.rec.ID)
	}
	if err := q.tryAdmit(qjob("2", "a", 0), 0, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit after close = %v, want ErrDraining", err)
	}
	if q.push(qjob("3", "a", 0)) {
		t.Fatal("push succeeded after close")
	}
	q.push(qjob("4", "a", 0))
	if q.pop() != nil {
		t.Fatal("closed queue handed out a queued job")
	}
}
