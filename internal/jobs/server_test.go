package jobs

// Server smoke test — what CI runs under -race: the real HTTP stack
// (handler + client) booted over a MemStore, two tenants running jobs
// concurrently, fair-share accounting, classified rejections over the wire,
// and a clean drain a next incarnation recognizes.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"persona"
)

func TestServerSmokeMultiTenant(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	m, sess := newTestManager(t, store, g, func(c *Config) {
		c.TenantWeights = map[string]int{"alice": 2, "bob": 1}
	})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Two tenants push jobs concurrently through the HTTP client.
	const jobsPerTenant = 3
	var wg sync.WaitGroup
	errCh := make(chan error, 2*jobsPerTenant)
	for _, tenant := range []string{"alice", "bob"} {
		c := &Client{Base: srv.URL, Tenant: tenant}
		for i := 0; i < jobsPerTenant; i++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				st, err := c.Submit(ctx, Spec{Dataset: "ds", Format: "fastq"})
				if err != nil {
					errCh <- err
					return
				}
				fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
				if err != nil {
					errCh <- err
					return
				}
				if fin.State != StateDone {
					errCh <- fmt.Errorf("job %s = %s (%s)", st.ID, fin.State, fin.Error)
					return
				}
				data, ct, err := c.Result(ctx, st.ID)
				if err != nil {
					errCh <- err
					return
				}
				if ct != "text/x-fastq" || len(data) == 0 || !bytes.HasPrefix(data, []byte("@")) {
					errCh <- fmt.Errorf("job %s result: %d bytes, content type %q", st.ID, len(data), ct)
				}
			}(c)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Accounting over the wire: both tenants fully served, weights visible.
	c := &Client{Base: srv.URL}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for tenant, weight := range map[string]int64{"alice": 2, "bob": 1} {
		ts := stats.Tenants[tenant]
		if ts.Completed != jobsPerTenant || ts.Submitted != jobsPerTenant || ts.Weight != int(weight) {
			t.Fatalf("tenant %s stats = %+v, want %d completed at weight %d", tenant, ts, jobsPerTenant, weight)
		}
	}
	jobsList, err := c.Jobs(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobsList) != jobsPerTenant {
		t.Fatalf("alice job list has %d entries, want %d", len(jobsList), jobsPerTenant)
	}

	// Classified errors over the wire: bad spec is 400, unknown job 404.
	if _, err := c.Submit(context.Background(), Spec{Dataset: "ds", Format: "vcf"}); err == nil {
		t.Fatal("bad spec accepted")
	} else {
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != 400 || he.Transient() {
			t.Fatalf("bad spec over the wire = %v, want permanent 400", err)
		}
		if !strings.Contains(he.Msg, "format") {
			t.Fatalf("error body %q does not name the problem", he.Msg)
		}
	}
	if _, err := c.Status(context.Background(), "j99999999"); err == nil {
		t.Fatal("unknown job resolved")
	} else {
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != 404 {
			t.Fatalf("unknown job = %v, want 404", err)
		}
	}

	// Clean drain on signal: admission flips to 503 with Retry-After,
	// health goes unready, and the journal gets the clean marker.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), Spec{Dataset: "ds", Format: "fastq"}); err == nil {
		t.Fatal("submit accepted during drain")
	} else {
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != 503 || he.RetryAfter <= 0 || !he.Transient() {
			t.Fatalf("drain rejection = %v, want 503 with Retry-After", err)
		}
	}
	if resp, err := http.Get(srv.URL + "/v1/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
		}
	}
	checkNoLeak(t, sess)

	sess2 := persona.NewSession(store, persona.SessionOptions{})
	defer sess2.Close()
	m2, err := NewManager(Config{Store: store, Session: sess2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CleanShutdown || rep.Finished != 2*jobsPerTenant {
		t.Fatalf("next-incarnation recovery = %+v, want a clean shutdown with %d finished jobs", rep, 2*jobsPerTenant)
	}
}
