package jobs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig drives a saturation run against a Manager: Tenants concurrent
// submitters each pushing JobsPerTenant copies of Spec as fast as admission
// allows, absorbing load-shed rejections with backoff.
type LoadConfig struct {
	Tenants       int
	JobsPerTenant int
	Spec          Spec
	// Poll is the completion-poll interval (default 2ms).
	Poll time.Duration
	// SubmitRetry is the backoff after an ErrOverloaded rejection
	// (default 5ms).
	SubmitRetry time.Duration
}

// LoadResult summarizes a saturation run.
type LoadResult struct {
	Jobs      int           `json:"jobs"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Rejected  int64         `json:"rejected"` // 429s absorbed by retry
	Elapsed   time.Duration `json:"elapsed_ns"`
	JobsPerS  float64       `json:"jobs_per_s"`
	P50       time.Duration `json:"p50_ns"`
	P95       time.Duration `json:"p95_ns"`
	P99       time.Duration `json:"p99_ns"`
}

// RunLoad saturates a started Manager and reports throughput and
// submit-to-done latency percentiles. Latency includes queueing — under
// overload that is the honest number.
func RunLoad(ctx context.Context, m *Manager, cfg LoadConfig) (LoadResult, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.JobsPerTenant <= 0 {
		cfg.JobsPerTenant = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	if cfg.SubmitRetry <= 0 {
		cfg.SubmitRetry = 5 * time.Millisecond
	}

	var (
		rejected  atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		completed int
		failed    int
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < cfg.JobsPerTenant; i++ {
				var st *JobStatus
				t0 := time.Now()
				for {
					var err error
					st, err = m.Submit(tenant, cfg.Spec)
					if err == nil {
						break
					}
					if !IsTransient(err) || ctx.Err() != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					rejected.Add(1)
					select {
					case <-ctx.Done():
						return
					case <-time.After(cfg.SubmitRetry):
					}
				}
				for {
					cur, err := m.Status(st.ID)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					if cur.State.Terminal() {
						mu.Lock()
						if cur.State == StateDone {
							completed++
							latencies = append(latencies, time.Since(t0))
						} else {
							failed++
						}
						mu.Unlock()
						break
					}
					select {
					case <-ctx.Done():
						return
					case <-time.After(cfg.Poll):
					}
				}
			}
		}(fmt.Sprintf("tenant-%d", t))
	}
	wg.Wait()

	res := LoadResult{
		Jobs:      cfg.Tenants * cfg.JobsPerTenant,
		Completed: completed,
		Failed:    failed,
		Rejected:  rejected.Load(),
		Elapsed:   time.Since(start),
	}
	if res.Elapsed > 0 {
		res.JobsPerS = float64(completed) / res.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(latencies)-1))
			return latencies[i]
		}
		res.P50, res.P95, res.P99 = pct(0.50), pct(0.95), pct(0.99)
	}
	if firstErr != nil && ctx.Err() == nil {
		return res, fmt.Errorf("loadgen: %w", firstErr)
	}
	return res, nil
}

// ColdWarmResult contrasts the same load run against a cold and a warm
// session cache.
type ColdWarmResult struct {
	Cold LoadResult `json:"cold"`
	Warm LoadResult `json:"warm"`
	// Speedup is warm jobs/s over cold jobs/s.
	Speedup float64 `json:"speedup"`
}

// RunLoadColdWarm measures what the session's chunk cache buys repeat jobs:
// it flushes the cache, runs the load cold, then runs the identical load
// again warm (every dataset chunk the first pass decoded is now cached) and
// reports both plus the jobs/s ratio.
func RunLoadColdWarm(ctx context.Context, m *Manager, cfg LoadConfig) (ColdWarmResult, error) {
	var out ColdWarmResult
	m.FlushCache()
	cold, err := RunLoad(ctx, m, cfg)
	out.Cold = cold
	if err != nil {
		return out, err
	}
	warm, err := RunLoad(ctx, m, cfg)
	out.Warm = warm
	if err != nil {
		return out, err
	}
	if cold.JobsPerS > 0 {
		out.Speedup = warm.JobsPerS / cold.JobsPerS
	}
	return out, nil
}
