package jobs

// Chaos suite of the job service: a hard kill mid-job (no journal writes,
// no cleanup — exactly what SIGKILL leaves behind) followed by a restart
// over the same store must resume the job and produce byte-identical
// output, with no leaked spill blobs and no leaked pooled chunks. Fault
// injection runs under fixed seeds so CI replays the same schedules.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"persona"
)

// chaosPolicy is the fixed fault mix both incarnations run under: transient
// read/write errors and latency spikes on every blob — dataset chunks, sort
// spills, journal records and the result blob all flow through it.
func chaosPolicy(seed int64) persona.FaultPolicy {
	return persona.FaultPolicy{
		Seed:   seed,
		Reads:  persona.OpFaults{ErrProb: 0.15, LatencyProb: 0.05, Latency: 200 * time.Microsecond},
		Writes: persona.OpFaults{ErrProb: 0.1},
	}
}

func chaosRetry() persona.RetryPolicy {
	return persona.RetryPolicy{MaxAttempts: 8, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond}
}

// TestChaosKillAndResume: kill the server mid-attempt under injected
// faults; a fresh incarnation over the same store must detect the unclean
// shutdown, replay the RUNNING claim, re-run the job idempotently and end
// with a byte-identical result and a clean blob namespace.
func TestChaosKillAndResume(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inner := persona.NewMemStore()
			g := importTestDataset(t, inner, "ds")
			want := directWGS(t, inner, g)
			spec := Spec{Dataset: "ds", Align: true, Sort: "location", MarkDup: true, Format: "sam"}

			// Incarnation 1: gated so the attempt reliably hangs mid-read,
			// then killed. The gate sits inside the fault/retry stack, as a
			// slow disk would.
			gate := make(chan struct{})
			gated := &gateStore{Store: inner, substr: "ds/chunk-000002", gate: gate}
			faulty := persona.NewFaultStore(gated, chaosPolicy(seed))
			resilient := persona.NewRetryStore(faulty, chaosRetry())
			sess := persona.NewSession(resilient, persona.SessionOptions{})
			m, err := NewManager(Config{
				Store: resilient, Session: sess, Reference: g,
				Workers: 1, RetryBase: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			m.Start()
			st, err := m.Submit("acme", spec)
			if err != nil {
				t.Fatal(err)
			}
			waitFor(t, 10*time.Second, "job to start", func() bool {
				cur, err := m.Status(st.ID)
				return err == nil && cur.State == StateRunning
			})
			killed := make(chan struct{})
			go func() {
				m.Kill()
				close(killed)
			}()
			time.Sleep(20 * time.Millisecond) // killed flag is set; journal is frozen
			close(gate)                       // let the blocked read unwind into the dead run
			<-killed
			waitNoLeak(t, sess) // pooled chunks drain even on a hard kill
			sess.Close()
			faulty.Close()

			// The journal must hold the RUNNING claim and no clean marker —
			// the crash signature recovery keys off.
			recs, loadErrs, err := NewJournal(inner).Load()
			if err != nil || len(loadErrs) > 0 {
				t.Fatalf("journal load after kill: %v %v", err, loadErrs)
			}
			if len(recs) != 1 || recs[0].State != StateRunning || recs[0].Attempts != 1 {
				t.Fatalf("journal after kill = %+v, want one RUNNING claim with 1 attempt", recs[0])
			}

			// Incarnation 2: same store, fresh wrappers (a new process),
			// different fault schedule.
			faulty2 := persona.NewFaultStore(inner, chaosPolicy(seed+100))
			defer faulty2.Close()
			resilient2 := persona.NewRetryStore(faulty2, chaosRetry())
			sess2 := persona.NewSession(resilient2, persona.SessionOptions{})
			defer sess2.Close()
			m2, err := NewManager(Config{
				Store: resilient2, Session: sess2, Reference: g,
				Workers: 1, RetryBase: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rep.CleanShutdown || rep.Interrupted != 1 || rep.Requeued != 1 {
				t.Fatalf("recovery = %+v, want unclean with 1 interrupted job requeued", rep)
			}
			m2.Start()
			fin := waitTerminal(t, m2, st.ID, 60*time.Second)
			if fin.State != StateDone {
				t.Fatalf("resumed job = %s (%s), want DONE", fin.State, fin.Error)
			}
			if fin.Attempts != 2 {
				t.Fatalf("attempts = %d, want 2 (the killed claim plus the resume)", fin.Attempts)
			}
			_, data, err := m2.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("seed %d: resumed SAM differs from fault-free baseline (%d vs %d bytes)", seed, len(data), len(want))
			}

			// No debris: the job namespace holds exactly the result blob
			// (killed attempt's spills swept, resumed attempt's cleaned up)
			// and no session spill prefix leaked.
			names, err := inner.List("jobs/" + st.ID + "/")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != resultBlob(st.ID) {
				t.Fatalf("job namespace after resume = %v, want only the result blob", names)
			}
			if temps, _ := inner.List(".pipeline/"); len(temps) != 0 {
				t.Fatalf("leaked session spill blobs: %v", temps)
			}
			if fs := faulty2.Stats(); fs.InjectedErrors+fs.InjectedLatency == 0 {
				t.Fatalf("seed %d: no faults injected on resume; the chaos run is vacuous", seed)
			}
			checkNoLeak(t, sess2)

			// And the second incarnation drains cleanly.
			if err := m2.Drain(t.Context()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSaturationLoadShedding: with one worker held busy and a 2-deep
// admission budget, extra submissions shed with ErrOverloaded (429 +
// Retry-After) instead of queueing unboundedly — while every admitted job
// still completes once the worker frees up.
func TestSaturationLoadShedding(t *testing.T) {
	store := persona.NewMemStore()
	g := importTestDataset(t, store, "ds")
	importTestDataset(t, store, "gate-ds")
	gate := make(chan struct{})
	gated := &gateStore{Store: store, substr: "gate-ds/chunk-000000", gate: gate}
	m, sess := newTestManager(t, gated, g, func(c *Config) {
		c.Workers = 1
		c.MaxQueued = 2
	})

	warm, err := m.Submit("acme", Spec{Dataset: "gate-ds", Format: "fastq"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "gate job to hold the worker", func() bool {
		cur, err := m.Status(warm.ID)
		return err == nil && cur.State == StateRunning
	})
	admitted := []*JobStatus{warm}
	for i := 0; i < 2; i++ {
		st, err := m.Submit("acme", Spec{Dataset: "ds", Format: "fastq"})
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, st)
	}
	var sheds int
	for i := 0; i < 5; i++ {
		_, err := m.Submit("acme", Spec{Dataset: "ds", Format: "fastq"})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit past budget = %v, want ErrOverloaded", err)
		}
		if !IsTransient(err) {
			t.Fatal("overload classified permanent")
		}
		status, retryAfter := HTTPStatus(err)
		if status != 429 || retryAfter <= 0 {
			t.Fatalf("overload maps to %d/%v, want 429 with Retry-After", status, retryAfter)
		}
		sheds++
	}
	if s := m.Stats(); s.Queued != 2 {
		t.Fatalf("queued = %d under shedding, want the budget's 2", s.Queued)
	}

	close(gate)
	for _, st := range admitted {
		if fin := waitTerminal(t, m, st.ID, 30*time.Second); fin.State != StateDone {
			t.Fatalf("admitted job %s = %s (%s), want DONE", st.ID, fin.State, fin.Error)
		}
	}
	s := m.Stats()
	if s.Tenants["acme"].Rejected != int64(sheds) || s.Tenants["acme"].Completed != int64(len(admitted)) {
		t.Fatalf("accounting = %+v, want %d rejections and %d completions", s.Tenants["acme"], sheds, len(admitted))
	}
	checkNoLeak(t, sess)
}
