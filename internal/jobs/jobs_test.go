package jobs

// Shared fixtures of the jobs suite: a small simulated dataset, deterministic
// store wrappers (a gate that blocks reads of chosen blobs until released, a
// wrapper that fails the first N writes of a blob), and wait helpers. The
// chaos and drain tests use the gate to hold a job mid-attempt at an exact,
// reproducible point instead of racing timers against the pipeline.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

// importTestDataset imports a simulated read set into store as dataset name
// and returns the genome it was simulated from.
func importTestDataset(t testing.TB, store persona.Store, name string) *persona.Genome {
	t.Helper()
	g, err := persona.SynthesizeGenome(100_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 8, N: 400, ReadLen: 80, ErrorRate: 0.003, DuplicateFraction: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := persona.ImportFASTQ(context.Background(), store, name, strings.NewReader(fq.String()), persona.RefSeqs(g), 100); err != nil {
		t.Fatal(err)
	}
	return g
}

// directWGS runs the aligned/sorted/deduplicated SAM pipeline directly over
// a store — the byte-identity baseline job results are compared against.
func directWGS(t testing.TB, store persona.Store, g *persona.Genome) []byte {
	t.Helper()
	sess := persona.NewSession(store, persona.SessionOptions{})
	defer sess.Close()
	idx, err := sess.Index(g)
	if err != nil {
		t.Fatal(err)
	}
	var sam bytes.Buffer
	if _, err := sess.Read("ds").
		Align(idx, persona.AlignOptions{}).
		Sort(persona.ByLocation).
		MarkDuplicates().
		ExportSAM(&sam).
		Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sam.Bytes()
}

// checkNoLeak asserts every pooled chunk went back to the session pool.
func checkNoLeak(t testing.TB, sess *persona.Session) {
	t.Helper()
	size, free := sess.PoolStats()
	if size != free {
		t.Fatalf("chunk pool leak: %d of %d chunks not returned", size-free, size)
	}
}

// waitNoLeak polls for the pool to drain — after a cancelled or killed run,
// in-flight async fetches may return their chunks a beat later.
func waitNoLeak(t testing.TB, sess *persona.Session) {
	t.Helper()
	waitFor(t, 5*time.Second, "chunk pool to drain", func() bool {
		size, free := sess.PoolStats()
		return size == free
	})
}

// gateStore blocks Get of blobs whose name contains substr until the gate
// channel closes — a deterministic way to hold a job mid-pipeline.
type gateStore struct {
	persona.Store
	substr string
	gate   chan struct{}
}

func (s *gateStore) Get(name string) ([]byte, error) {
	if strings.Contains(name, s.substr) {
		<-s.gate
	}
	return s.Store.Get(name)
}

// failNStore fails the first n Puts of blobs whose name contains substr
// with a transient error, then passes through — deterministic transient
// failure for retry tests.
type failNStore struct {
	persona.Store
	substr string
	mu     sync.Mutex
	n      int
}

func (s *failNStore) Put(name string, data []byte) error {
	if strings.Contains(name, s.substr) {
		s.mu.Lock()
		if s.n > 0 {
			s.n--
			s.mu.Unlock()
			return fmt.Errorf("put %q: injected transient fault", name)
		}
		s.mu.Unlock()
	}
	return s.Store.Put(name, data)
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitTerminal polls a job to a terminal state and returns its status.
func waitTerminal(t testing.TB, m *Manager, id string, timeout time.Duration) *JobStatus {
	t.Helper()
	var st *JobStatus
	waitFor(t, timeout, fmt.Sprintf("job %s to finish", id), func() bool {
		var err error
		st, err = m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		return st.State.Terminal()
	})
	return st
}
