// Package jobs turns a persona.Session into a crash-safe multi-tenant job
// service: declarative pipeline specs are admitted under a load-shedding
// budget, journaled durably to the session's blob store before they are
// acknowledged, dispatched fairly across tenants by weighted round-robin,
// and resumed after a crash by replaying the journal. It is the engine
// behind cmd/persona-server; the HTTP surface lives in api.go and the
// matching client in client.go.
//
// Crash safety leans on two invariants established lower in the stack:
// blob Puts are atomic (a journal record is either the old state or the new
// state, never torn), and every blob a job writes — outputs, exported
// results, sort spills — lives under the job-unique prefix "jobs/<id>/",
// which is swept before every (re)run. Re-running an interrupted job is
// therefore idempotent: the sweep deletes any partial output, and the job's
// inputs are immutable datasets.
package jobs

import (
	"fmt"
	"time"

	"persona"
)

// State is a job's position in its lifecycle. Transitions are journaled
// before they take effect, so the journal never claims more progress than
// the store holds: PENDING → RUNNING → DONE | FAILED, with RUNNING able to
// fall back to PENDING (transient failure within the attempt budget, or a
// checkpointing drain).
type State string

const (
	// StatePending: admitted and journaled, waiting for a worker.
	StatePending State = "PENDING"
	// StateRunning: a worker has claimed the job; attempt count incremented.
	StateRunning State = "RUNNING"
	// StateDone: the pipeline completed; results are durable in the store.
	StateDone State = "DONE"
	// StateFailed: permanently failed, or transient failures exhausted the
	// attempt budget.
	StateFailed State = "FAILED"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Spec is a declarative pipeline job: which dataset to read and which
// stages to run, mirroring the Pipeline builder verbs. The zero value of
// every knob means "skip that stage".
type Spec struct {
	// Dataset names the input AGD dataset (required).
	Dataset string `json:"dataset"`
	// Align appends a results column using the server's reference index.
	Align bool `json:"align,omitempty"`
	// MaxDist is the aligner's maximum edit distance (0 = default).
	MaxDist int `json:"max_dist,omitempty"`
	// Sort reorders the stream: "", "location" or "metadata".
	Sort string `json:"sort,omitempty"`
	// MarkDup flags duplicates in the results column.
	MarkDup bool `json:"markdup,omitempty"`
	// MappedOnly keeps only aligned reads; MinMapQ keeps reads at or above a
	// mapping quality; Dedup drops marked duplicates. Any filter implies an
	// aligned stream.
	MappedOnly bool `json:"mapped_only,omitempty"`
	MinMapQ    int  `json:"min_mapq,omitempty"`
	Dedup      bool `json:"dedup,omitempty"`
	// Format picks the sink: "sam", "bam" or "fastq" export into a result
	// blob, or "dataset" to materialize an output AGD dataset.
	Format string `json:"format"`
	// DeadlineMS caps the job's wall time per attempt (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// EdgeDepth overrides the pumped scheduler's bounded-queue depth
	// (0 = pipeline default).
	EdgeDepth int `json:"edge_depth,omitempty"`
	// Nodes >= 1 runs the pipeline distributed across that many in-process
	// worker nodes (the spec must then include a sort — the shuffle is the
	// sort). 0 keeps the single-node scheduler.
	Nodes int `json:"nodes,omitempty"`
}

// needsAlignment reports whether any requested stage requires a results
// column in the stream.
func (sp Spec) needsAlignment() bool {
	return sp.Sort == "location" || sp.MarkDup || sp.MappedOnly || sp.MinMapQ > 0 ||
		sp.Dedup || sp.Format == "sam" || sp.Format == "bam"
}

// Validate rejects specs that could never run; errors wrap ErrBadSpec so
// the HTTP layer maps them to 400 at admission instead of burning a worker.
func (sp Spec) Validate() error {
	if sp.Dataset == "" {
		return fmt.Errorf("spec: missing dataset: %w", ErrBadSpec)
	}
	switch sp.Sort {
	case "", "location", "metadata":
	default:
		return fmt.Errorf("spec: sort %q (want location or metadata): %w", sp.Sort, ErrBadSpec)
	}
	switch sp.Format {
	case "sam", "bam", "fastq", "dataset":
	default:
		return fmt.Errorf("spec: format %q (want sam, bam, fastq or dataset): %w", sp.Format, ErrBadSpec)
	}
	if sp.Dedup && !sp.MarkDup {
		return fmt.Errorf("spec: dedup without markdup: %w", ErrBadSpec)
	}
	if sp.DeadlineMS < 0 {
		return fmt.Errorf("spec: negative deadline: %w", ErrBadSpec)
	}
	if sp.Nodes < 0 {
		return fmt.Errorf("spec: negative nodes: %w", ErrBadSpec)
	}
	if sp.Nodes >= 1 && sp.Sort == "" {
		return fmt.Errorf("spec: distributed job needs a sort: %w", ErrBadSpec)
	}
	return nil
}

// StageMeta is one stage's final counters in a completed job's result.
type StageMeta struct {
	Stage   string        `json:"stage"`
	Records uint64        `json:"records"`
	Groups  int64         `json:"groups"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ResultMeta describes where a completed job's output landed and what the
// run looked like. It is journaled with the DONE record, so results survive
// a restart.
type ResultMeta struct {
	// Records is what the sink consumed.
	Records uint64 `json:"records"`
	// Elapsed is the successful attempt's wall time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Stages are the per-stage final counters of the successful attempt.
	Stages []StageMeta `json:"stages,omitempty"`
	// ResultBlob/ResultBytes locate an exported (sam/bam/fastq) result in
	// the store; OutDataset names a "dataset"-format job's output dataset.
	ResultBlob  string `json:"result_blob,omitempty"`
	ResultBytes int64  `json:"result_bytes,omitempty"`
	OutDataset  string `json:"out_dataset,omitempty"`
	// Storage carries the resilient store's retry/hedge delta for the
	// attempt, when the session store is resilience-wrapped.
	Storage *persona.StorageStats `json:"storage,omitempty"`
}

// Record is a job's durable journal entry — the unit the write-ahead
// journal Puts atomically at every state transition.
type Record struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Spec   Spec   `json:"spec"`
	State  State  `json:"state"`
	// Attempts counts dispatches so far; MaxAttempts is the budget transient
	// failures may consume before the job fails permanently.
	Attempts    int `json:"attempts"`
	MaxAttempts int `json:"max_attempts"`
	// EstBytes is the admission-time size estimate counted against the
	// queued-bytes budget (kept so recovery re-admits at the same weight).
	EstBytes    int64     `json:"est_bytes"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Error and Transient record the last failure and its classification.
	Error     string `json:"error,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	// Result is set on DONE.
	Result *ResultMeta `json:"result,omitempty"`
}

// JobStatus is a Record plus the live per-stage progress of an in-flight
// attempt — what the status endpoint serves.
type JobStatus struct {
	Record
	// Progress is the observed pipeline's per-stage counters, present while
	// the job is RUNNING (and frozen at their final values afterwards, until
	// the record is reloaded from the journal).
	Progress []persona.StageProgress `json:"progress,omitempty"`
}

// jobPrefix is the sweepable namespace every blob of a job lives under.
func jobPrefix(id string) string { return "jobs/" + id }

// resultBlob is where an export-format job's rendered output is Put.
func resultBlob(id string) string { return jobPrefix(id) + "/result" }

// outDataset names a dataset-format job's output dataset.
func outDataset(id string) string { return jobPrefix(id) + "/out" }

// spillPrefix is where the job's pipeline spills sort runs.
func spillPrefix(id string) string { return jobPrefix(id) + "/spill" }
