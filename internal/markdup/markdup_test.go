package markdup

import (
	"context"
	"testing"

	"persona/internal/agd"
	"persona/internal/testutil"
)

func TestMarkFindsSimulatedDuplicates(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 150_000, NumReads: 2000, ReadLen: 80, ChunkSize: 256, DupFrac: 0.2, Seed: 61,
	})
	stats, err := MarkDataset(context.Background(), f.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != 2000 {
		t.Fatalf("Reads = %d", stats.Reads)
	}
	frac := float64(stats.Duplicates) / float64(stats.Reads)
	// The simulator drew ~20% duplicates; random collisions add a few.
	if frac < 0.12 || frac > 0.35 {
		t.Fatalf("duplicate fraction %.3f, want ≈0.2", frac)
	}

	// Flags must be persisted in the rewritten results column.
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	marked := uint64(0)
	for _, r := range results {
		if r.IsDuplicate() {
			marked++
		}
	}
	if marked != stats.Duplicates {
		t.Fatalf("persisted %d duplicate flags, stats say %d", marked, stats.Duplicates)
	}
}

func TestMarkKeepsFirstOccurrence(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 100_000, NumReads: 1000, ReadLen: 70, ChunkSize: 128, DupFrac: 0.3, Seed: 62,
	})
	if _, err := MarkDataset(context.Background(), f.Dataset); err != nil {
		t.Fatal(err)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	// For every duplicate class, exactly one member must be unmarked.
	type key struct {
		pos int64
		rev bool
	}
	unmarked := make(map[key]int)
	total := make(map[key]int)
	for _, r := range results {
		if r.IsUnmapped() {
			continue
		}
		pos, err := UnclippedPos(&r)
		if err != nil {
			t.Fatal(err)
		}
		k := key{pos: pos, rev: r.IsReverse()}
		total[k]++
		if !r.IsDuplicate() {
			unmarked[k]++
		}
	}
	for k, n := range total {
		if unmarked[k] != 1 {
			t.Fatalf("class %+v has %d members, %d unmarked (want exactly 1)", k, n, unmarked[k])
		}
	}
}

func TestMarkIdempotent(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 80_000, NumReads: 500, ReadLen: 60, ChunkSize: 100, DupFrac: 0.1, Seed: 63,
	})
	s1, err := MarkDataset(context.Background(), f.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := MarkDataset(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Duplicates != s2.Duplicates {
		t.Fatalf("second pass found %d duplicates, first found %d", s2.Duplicates, s1.Duplicates)
	}
}

func TestMarkSkipsUnmapped(t *testing.T) {
	store := agd.NewMemStore()
	// Hand-build a dataset of two identical unmapped results: they must not
	// be marked as duplicates of each other.
	w, err := agd.NewWriter(store, "u", []agd.ColumnSpec{{Name: agd.ColResults, Type: agd.TypeResults}},
		agd.WriterOptions{ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	un := agd.Result{Location: agd.UnmappedLocation, MateLocation: agd.UnmappedLocation, Flags: agd.FlagUnmapped}
	for i := 0; i < 2; i++ {
		if err := w.AppendResult(&un); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Mark(context.Background(), store, "u")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicates != 0 {
		t.Fatalf("unmapped reads marked as duplicates: %+v", stats)
	}
}

func TestUnclippedPos(t *testing.T) {
	fwd := agd.Result{Location: 100, Cigar: "5S45M"}
	pos, err := UnclippedPos(&fwd)
	if err != nil || pos != 95 {
		t.Fatalf("forward clipped = %d, %v; want 95", pos, err)
	}
	rev := agd.Result{Location: 100, Cigar: "45M5S", Flags: agd.FlagReverse}
	pos, err = UnclippedPos(&rev)
	if err != nil || pos != 100+45+5-1 {
		t.Fatalf("reverse clipped = %d, %v; want %d", pos, err, 100+45+5-1)
	}
	plain := agd.Result{Location: 10, Cigar: "50M"}
	pos, err = UnclippedPos(&plain)
	if err != nil || pos != 10 {
		t.Fatalf("plain = %d, %v", pos, err)
	}
}

func TestMarkErrors(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "nores", testutil.Config{
		GenomeSize: 50_000, NumReads: 50, ReadLen: 50, ChunkSize: 25, Seed: 64, SkipAlign: true,
	})
	if _, err := MarkDataset(context.Background(), f.Dataset); err == nil {
		t.Fatal("marking without results column succeeded")
	}
	if _, err := Mark(context.Background(), store, "missing"); err == nil {
		t.Fatal("marking a missing dataset succeeded")
	}
}
