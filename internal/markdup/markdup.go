// Package markdup marks PCR/optical duplicate reads using the signature-
// hashing approach of Samblaster [Faust & Hall 2014], as §4.3 of the paper
// describes. A read's signature is its unclipped 5' reference position plus
// strand (plus the mate's signature for paired reads); every read after the
// first with the same signature is flagged as a duplicate.
//
// Because only alignment positions matter, Persona reads and rewrites just
// the results column — the selective-column-I/O advantage §5.6 measures
// (Samblaster must stream entire SAM rows). The paper's implementation uses
// Google's dense_hash_map; Go's built-in map plays that role here.
package markdup

import (
	"fmt"
	"runtime"
	"sync"

	"persona/internal/agd"
	"persona/internal/align"
)

// Stats reports what a marking pass did.
type Stats struct {
	Reads      uint64
	Duplicates uint64
}

// signature identifies a read's duplication class.
type signature struct {
	pos     int64 // unclipped 5' position
	reverse bool
	matePos int64 // mate's location or -1
}

// Mark rewrites the results column of a dataset with duplicate flags set and
// returns marking statistics. The manifest is unchanged (same columns, same
// chunking); only results chunk blobs are replaced.
func Mark(store agd.BlobStore, name string) (Stats, error) {
	ds, err := agd.Open(store, name)
	if err != nil {
		return Stats{}, err
	}
	return MarkDataset(ds)
}

// MarkDataset is Mark over an open dataset.
func MarkDataset(ds *agd.Dataset) (Stats, error) {
	m := ds.Manifest
	if !m.HasColumn(agd.ColResults) {
		return Stats{}, fmt.Errorf("markdup: dataset %q has no results column", m.Name)
	}
	var stats Stats
	seen := make(map[signature]struct{}, m.NumRecords())

	// Marking is order-dependent (the first occurrence survives), so the
	// decode/mark pass is sequential; compressing and storing the rewritten
	// chunks is not, and runs on background workers.
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	asyncErrs := make(chan error, len(m.Chunks))
	for ci := range m.Chunks {
		chunk, err := ds.ReadChunk(agd.ColResults, ci)
		if err != nil {
			return stats, err
		}
		builder := agd.NewChunkBuilder(agd.TypeResults, chunk.FirstOrdinal)
		for r := 0; r < chunk.NumRecords(); r++ {
			res, err := chunk.DecodeResultRecord(r)
			if err != nil {
				return stats, err
			}
			stats.Reads++
			if !res.IsUnmapped() {
				sig, err := signatureOf(&res)
				if err != nil {
					return stats, err
				}
				if _, dup := seen[sig]; dup {
					res.Flags |= agd.FlagDuplicate
					stats.Duplicates++
				} else {
					seen[sig] = struct{}{}
				}
			}
			builder.Append(agd.EncodeResult(nil, &res))
		}
		blobName, err := ds.ChunkBlobName(agd.ColResults, ci)
		if err != nil {
			return stats, err
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(builder *agd.ChunkBuilder, blobName string) {
			defer wg.Done()
			defer func() { <-sem }()
			blob, err := agd.EncodeChunk(builder.Chunk(), agd.CompressGzip)
			if err == nil {
				err = ds.Store().Put(blobName, blob)
			}
			if err != nil {
				select {
				case asyncErrs <- err:
				default:
				}
			}
		}(builder, blobName)
	}
	wg.Wait()
	select {
	case err := <-asyncErrs:
		return stats, err
	default:
	}
	return stats, nil
}

// signatureOf computes a read's duplication signature.
func signatureOf(res *agd.Result) (signature, error) {
	pos, err := UnclippedPos(res)
	if err != nil {
		return signature{}, err
	}
	sig := signature{pos: pos, reverse: res.IsReverse(), matePos: agd.UnmappedLocation}
	if res.Flags&agd.FlagPaired != 0 {
		sig.matePos = res.MateLocation
	}
	return sig, nil
}

// UnclippedPos returns the 5'-end reference position of the read as if no
// bases had been clipped: forward reads project leading clips before the
// start; reverse reads use the unclipped end coordinate. Matching
// Samblaster, this makes duplicates of the same fragment collide even when
// their clipping differs.
func UnclippedPos(res *agd.Result) (int64, error) {
	cigar, err := align.ParseCigar(res.Cigar)
	if err != nil {
		return 0, err
	}
	if !res.IsReverse() {
		lead := 0
		if len(cigar) > 0 && (cigar[0].Op == align.CigarSoftClip || cigar[0].Op == align.CigarHardClip) {
			lead = cigar[0].Len
		}
		return res.Location - int64(lead), nil
	}
	trail := 0
	if n := len(cigar); n > 0 && (cigar[n-1].Op == align.CigarSoftClip || cigar[n-1].Op == align.CigarHardClip) {
		trail = cigar[n-1].Len
	}
	return res.Location + int64(cigar.RefLen()) + int64(trail) - 1, nil
}
