// Package markdup marks PCR/optical duplicate reads using the signature-
// hashing approach of Samblaster [Faust & Hall 2014], as §4.3 of the paper
// describes. A read's signature is its unclipped 5' reference position plus
// strand (plus the mate's signature for paired reads); every read after the
// first with the same signature is flagged as a duplicate.
//
// Because only alignment positions matter, Persona reads and rewrites just
// the results column — the selective-column-I/O advantage §5.6 measures
// (Samblaster must stream entire SAM rows). The paper's implementation uses
// Google's dense_hash_map; Go's built-in map plays that role here. Chunks
// arrive through a prefetching agd.ChunkStream and results re-encode
// straight into pooled chunk builders, so the sequential mark pass performs
// no per-record allocation.
package markdup

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/dataflow"
)

// Options configures a marking pass.
type Options struct {
	// Prefetch is the results-column chunk-fetch window (agd.ChunkStream):
	// how many chunks' blobs are kept in flight, counting the one being
	// marked. 0 selects agd.DefaultPrefetch.
	Prefetch int
}

// Stats reports what a marking pass did.
type Stats struct {
	Reads      uint64
	Duplicates uint64
}

// signature identifies a read's duplication class.
type signature struct {
	pos     int64 // unclipped 5' position
	reverse bool
	matePos int64 // mate's location or -1
}

// Mark rewrites the results column of a dataset with duplicate flags set and
// returns marking statistics. The manifest is unchanged (same columns, same
// chunking); only results chunk blobs are replaced. Cancellation and
// deadline of ctx are checked per chunk.
func Mark(ctx context.Context, store agd.BlobStore, name string) (Stats, error) {
	ds, err := agd.Open(store, name)
	if err != nil {
		return Stats{}, err
	}
	return MarkDataset(ctx, ds)
}

// MarkDataset is Mark over an open dataset.
func MarkDataset(ctx context.Context, ds *agd.Dataset) (Stats, error) {
	return MarkDatasetOptions(ctx, ds, Options{})
}

// MarkDatasetOptions is MarkDataset with explicit options.
func MarkDatasetOptions(ctx context.Context, ds *agd.Dataset, opts Options) (Stats, error) {
	m := ds.Manifest
	if !m.HasColumn(agd.ColResults) {
		return Stats{}, fmt.Errorf("markdup: dataset %q has no results column", m.Name)
	}
	var stats Stats
	seen := make(map[signature]struct{}, m.NumRecords())

	window := opts.Prefetch
	if window <= 0 {
		window = agd.DefaultPrefetch
	}
	// The streamed chunks recycle through a pool sized to the fetch window;
	// marking releases each chunk once its records are re-encoded.
	chunkPool := agd.NewChunkPool(window + 1)
	stream, err := ds.Stream(agd.StreamOptions{
		Columns:  []string{agd.ColResults},
		Prefetch: opts.Prefetch,
		Pool:     chunkPool,
	})
	if err != nil {
		return stats, err
	}
	defer stream.Close()

	// Marking is order-dependent (the first occurrence survives), so the
	// decode/mark pass is sequential; compressing and storing the rewritten
	// chunks is not, and runs on background workers with pooled builders.
	workers := runtime.NumCPU()
	builderPool := dataflow.NewItemPool(workers+1,
		func() *agd.ChunkBuilder { return agd.NewChunkBuilder(agd.TypeResults, 0) },
		nil,
	)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	asyncErrs := make(chan error, 1)
	var cigar align.Cigar // reused unclipped-position parse scratch
	for {
		sc, err := stream.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			wg.Wait()
			return stats, err
		}
		chunk := sc.Chunks()[0]
		builder, err := builderPool.Get(ctx)
		if err != nil {
			wg.Wait()
			return stats, err
		}
		cigar, err = markChunk(chunk, builder, seen, &stats, cigar)
		if err != nil {
			wg.Wait()
			return stats, err
		}
		blobName, err := ds.ChunkBlobName(agd.ColResults, sc.Index)
		if err != nil {
			wg.Wait()
			return stats, err
		}
		// The records are re-encoded into the builder; the streamed chunk
		// goes back to the pool.
		sc.Release()
		wg.Add(1)
		sem <- struct{}{}
		go func(builder *agd.ChunkBuilder, blobName string) {
			defer wg.Done()
			defer func() { <-sem }()
			blob, err := agd.EncodeChunk(builder.Chunk(), agd.CompressGzip)
			if err == nil {
				err = ds.Store().Put(blobName, blob)
			}
			builderPool.Put(builder)
			if err != nil {
				select {
				case asyncErrs <- err:
				default:
				}
			}
		}(builder, blobName)
	}
	wg.Wait()
	select {
	case err := <-asyncErrs:
		return stats, err
	default:
	}
	return stats, nil
}

// markChunk re-encodes one results chunk into builder with duplicate flags
// set, updating seen and stats. The CIGAR scratch is returned for reuse —
// the shared sequential mark pass under both the dataset and stream forms.
func markChunk(chunk *agd.Chunk, builder *agd.ChunkBuilder, seen map[signature]struct{}, stats *Stats, cigar align.Cigar) (align.Cigar, error) {
	builder.Reset(agd.TypeResults, chunk.FirstOrdinal)
	for r := 0; r < chunk.NumRecords(); r++ {
		v, err := chunk.DecodeResultViewRecord(r)
		if err != nil {
			return cigar, err
		}
		stats.Reads++
		if !v.IsUnmapped() {
			var sig signature
			sig, cigar, err = signatureOf(&v, cigar)
			if err != nil {
				return cigar, err
			}
			if _, dup := seen[sig]; dup {
				v.Flags |= agd.FlagDuplicate
				stats.Duplicates++
			} else {
				seen[sig] = struct{}{}
			}
		}
		builder.AppendResultView(&v)
	}
	return cigar, nil
}

// MarkStream is the stream-in/stream-out form of Mark, used by composed
// pipelines: each group's results chunk is replaced with a re-encoded chunk
// carrying duplicate flags; the other columns pass through untouched.
// Marking is order-dependent (the first occurrence survives), so the pass is
// sequential — exactly the order the stream delivers. The returned stats
// update as groups flow and are complete at io.EOF.
//
// pipelining is how many output groups may be in flight at once. With
// pipelining ≤ 1 (the serial pull path) the results chunk aliases one reused
// builder, valid until the next group. With pipelining > 1 results builders
// come from a bounded pool of that size and each group's chunks stay valid
// until its Release (provided the input stream is Owned — the passthrough
// columns alias the upstream group, held alive until the output releases).
func MarkStream(in *agd.GroupStream, pipelining int) (*agd.GroupStream, *Stats, error) {
	resCol := in.Meta.Col(agd.ColResults)
	if resCol < 0 {
		return nil, nil, fmt.Errorf("markdup: stream has no results column")
	}
	stats := &Stats{}
	seen := make(map[signature]struct{}, in.Meta.NumRecords)
	var pool *agd.BuilderPool
	var builder *agd.ChunkBuilder
	if pipelining > 1 {
		pool = agd.NewBuilderPool(pipelining, []agd.ColumnSpec{{Name: agd.ColResults, Type: agd.TypeResults}})
	} else {
		builder = agd.NewChunkBuilder(agd.TypeResults, 0)
	}
	var cigar align.Cigar
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		g, err := in.Next(ctx)
		if err != nil {
			return nil, err
		}
		b := builder
		var set *agd.BuilderSet
		if pool != nil {
			if set, err = pool.Get(ctx, g.Chunks[resCol].FirstOrdinal); err != nil {
				g.Release()
				return nil, err
			}
			b = set.Builders[0]
		}
		cigar, err = markChunk(g.Chunks[resCol], b, seen, stats, cigar)
		if err != nil {
			if set != nil {
				pool.Put(set)
			}
			g.Release()
			return nil, err
		}
		chunks := make([]*agd.Chunk, len(g.Chunks))
		copy(chunks, g.Chunks)
		chunks[resCol] = b.Chunk()
		release := g.Release
		if set != nil {
			release = func() {
				pool.Put(set)
				g.Release()
			}
		}
		return agd.NewRowGroup(g.Index, g.Shard, chunks, release), nil
	}
	out := agd.NewGroupStream(in.Meta, next, in.Close)
	out.Owned = pool != nil && in.Owned
	return out, stats, nil
}

// Marker is the row-at-a-time, seedable form of the marking pass, used by
// the distributed pipeline's per-partition reduce: partitions after the
// first pre-load their signature set from a halo of earlier rows (Observe),
// then mark their own range in order (MarkView) — first-wins marking means
// seeding is membership-only, so halo order does not matter. One Marker is
// single-goroutine state, exactly like the sequential map in Mark.
type Marker struct {
	// Stats accumulates over MarkView calls; Observe does not count.
	Stats Stats

	seen  map[signature]struct{}
	cigar align.Cigar
}

// NewMarker returns an empty marker; capacity hints the expected number of
// distinct signatures.
func NewMarker(capacity int) *Marker {
	return &Marker{seen: make(map[signature]struct{}, capacity)}
}

// Observe seeds the signature set from one encoded results record without
// marking or counting it. Unmapped rows are ignored, as marking ignores
// them.
func (mk *Marker) Observe(rec []byte) error {
	v, err := agd.DecodeResultView(rec)
	if err != nil {
		return err
	}
	if v.IsUnmapped() {
		return nil
	}
	var sig signature
	sig, mk.cigar, err = signatureOf(&v, mk.cigar)
	if err != nil {
		return err
	}
	mk.seen[sig] = struct{}{}
	return nil
}

// MarkView marks one decoded result in place: the first row of each
// signature inserts it, every later one gains FlagDuplicate — the same rule
// markChunk applies, over a caller-decoded view.
func (mk *Marker) MarkView(v *agd.ResultView) error {
	mk.Stats.Reads++
	if v.IsUnmapped() {
		return nil
	}
	var sig signature
	var err error
	sig, mk.cigar, err = signatureOf(v, mk.cigar)
	if err != nil {
		return err
	}
	if _, dup := mk.seen[sig]; dup {
		v.Flags |= agd.FlagDuplicate
		mk.Stats.Duplicates++
	} else {
		mk.seen[sig] = struct{}{}
	}
	return nil
}

// Span returns the absolute distance between an encoded result record's
// signature position and its aligned location (0 for unmapped rows). The
// maximum span over a location-sorted range bounds how far a signature can
// reach across a partition cut, which sizes the shuffle's halo.
func (mk *Marker) Span(rec []byte) (int64, error) {
	v, err := agd.DecodeResultView(rec)
	if err != nil {
		return 0, err
	}
	if v.IsUnmapped() {
		return 0, nil
	}
	var pos int64
	pos, mk.cigar, err = unclippedPos(&v, mk.cigar)
	if err != nil {
		return 0, err
	}
	d := pos - v.Location
	if d < 0 {
		d = -d
	}
	return d, nil
}

// signatureOf computes a read's duplication signature, parsing its CIGAR
// into scratch (returned for reuse).
func signatureOf(v *agd.ResultView, scratch align.Cigar) (signature, align.Cigar, error) {
	pos, scratch, err := unclippedPos(v, scratch)
	if err != nil {
		return signature{}, scratch, err
	}
	sig := signature{pos: pos, reverse: v.IsReverse(), matePos: agd.UnmappedLocation}
	if v.Flags&agd.FlagPaired != 0 {
		sig.matePos = v.MateLocation
	}
	return sig, scratch, nil
}

// UnclippedPos returns the 5'-end reference position of the read as if no
// bases had been clipped: forward reads project leading clips before the
// start; reverse reads use the unclipped end coordinate. Matching
// Samblaster, this makes duplicates of the same fragment collide even when
// their clipping differs.
func UnclippedPos(res *agd.Result) (int64, error) {
	v := res.View()
	pos, _, err := unclippedPos(&v, nil)
	return pos, err
}

// unclippedPos is UnclippedPos over a borrowed view with a reusable CIGAR
// parse scratch.
func unclippedPos(v *agd.ResultView, scratch align.Cigar) (int64, align.Cigar, error) {
	cigar, err := align.ParseCigarBytes(scratch[:0], v.Cigar)
	if err != nil {
		return 0, scratch, err
	}
	if !v.IsReverse() {
		lead := 0
		if len(cigar) > 0 && (cigar[0].Op == align.CigarSoftClip || cigar[0].Op == align.CigarHardClip) {
			lead = cigar[0].Len
		}
		return v.Location - int64(lead), cigar, nil
	}
	trail := 0
	if n := len(cigar); n > 0 && (cigar[n-1].Op == align.CigarSoftClip || cigar[n-1].Op == align.CigarHardClip) {
		trail = cigar[n-1].Len
	}
	return v.Location + int64(cigar.RefLen()) + int64(trail) - 1, cigar, nil
}
