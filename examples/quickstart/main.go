// Quickstart: the smallest end-to-end Persona run — import reads, align
// them against a reference, and look at the results.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

func main() {
	// A deterministic synthetic reference stands in for hg19 (the real
	// reference cannot ship with the repository; see DESIGN.md §3).
	ref, err := persona.SynthesizeGenome(500_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reference:", ref)

	// Simulate a sequencer run. In production this would be the FASTQ file
	// coming off the machine; the simulator is internal scaffolding.
	sim, err := reads.NewSimulator(ref, reads.SimConfig{Seed: 1, N: 5000, ReadLen: 101})
	if err != nil {
		log.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// 1. Import FASTQ into the AGD column store.
	store := persona.NewMemStore()
	manifest, n, err := persona.ImportFASTQ(store, "patient", strings.NewReader(fq.String()),
		persona.RefSeqs(ref), 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported:  %d reads in %d AGD chunks (columns %v)\n",
		n, len(manifest.Chunks), manifest.Columns)

	// 2. Build the seed index and align.
	idx, err := persona.BuildIndex(ref)
	if err != nil {
		log.Fatal(err)
	}
	report, _, err := persona.Align(context.Background(), store, "patient", idx, persona.AlignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned:   %d reads (%d bases) in %s — %.2f Mbases/s\n",
		report.Reads, report.Bases, report.Elapsed.Round(1000_000), report.BasesPerSec/1e6)

	// 3. Inspect a few results.
	ds, err := persona.OpenDataset(store, "patient")
	if err != nil {
		log.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		log.Fatal(err)
	}
	mapped := 0
	for _, r := range results {
		if !r.IsUnmapped() {
			mapped++
		}
	}
	fmt.Printf("mapped:    %d/%d (%.1f%%)\n", mapped, len(results), 100*float64(mapped)/float64(len(results)))
	fmt.Println("first results:")
	for i := 0; i < 3; i++ {
		r := results[i]
		fmt.Printf("  read %d: loc=%d mapq=%d cigar=%s\n", i, r.Location, r.MapQ, r.Cigar)
	}

	// 4. Export to SAM for downstream tools.
	var sam bytes.Buffer
	if _, err := persona.ExportSAM(store, "patient", &sam); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(sam.String(), "\n", 6)
	fmt.Println("SAM head:")
	for _, line := range lines[:5] {
		fmt.Println(" ", line)
	}
}
