// Quickstart: the smallest end-to-end Persona run on the Session/Pipeline
// API — open a session, import reads, then run one fused
// align → sort → export graph with no intermediate datasets.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

func main() {
	ctx := context.Background()

	// A deterministic synthetic reference stands in for hg19 (the real
	// reference cannot ship with the repository).
	ref, err := persona.SynthesizeGenome(500_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reference:", ref)

	// Simulate a sequencer run. In production this would be the FASTQ file
	// coming off the machine; the simulator is internal scaffolding.
	sim, err := reads.NewSimulator(ref, reads.SimConfig{Seed: 1, N: 5000, ReadLen: 101})
	if err != nil {
		log.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// A Session owns the runtime every pipeline shares: the store, one
	// work-stealing executor, the chunk pools and the index cache.
	store := persona.NewMemStore()
	sess := persona.NewSession(store, persona.SessionOptions{})
	defer sess.Close()

	// 1. Import FASTQ into the AGD column store — a two-stage pipeline:
	// parse source, dataset sink.
	imp, err := sess.ImportFASTQ(strings.NewReader(fq.String()), persona.RefSeqs(ref), 1000).
		Write("patient").
		Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported:  %d reads in %d AGD chunks (columns %v)\n",
		imp.Records, len(imp.Manifest.Chunks), imp.Manifest.Columns)

	// 2. The whole analysis as ONE graph: read the dataset, align against
	// the session-cached index, sort by coordinate, render SAM. Chunks flow
	// stage-to-stage in memory — nothing lands in the store between stages.
	idx, err := sess.Index(ref)
	if err != nil {
		log.Fatal(err)
	}
	var sam bytes.Buffer
	report, err := sess.Read("patient").
		Align(idx, persona.AlignOptions{}).
		Sort(persona.ByLocation).
		ExportSAM(&sam).
		Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline:  %d records in %s (%.2f Mbases/s aligned)\n",
		report.Records, report.Elapsed.Round(1000_000), report.Align.BasesPerSec/1e6)
	for _, st := range report.Stages {
		fmt.Printf("  %-12s %8d records  %v\n", st.Stage, st.Records, st.Elapsed.Round(1000_000))
	}
	fmt.Printf("executor:  %d tasks, %d stolen\n", report.Executor.Completed, report.Executor.Steals)

	// 3. The output is ordinary SAM for downstream tools.
	lines := strings.SplitN(sam.String(), "\n", 6)
	fmt.Println("SAM head:")
	for _, line := range lines[:5] {
		fmt.Println(" ", line)
	}
}
