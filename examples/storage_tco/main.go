// Storage and TCO: stores a dataset in the Ceph-like replicated object
// store, injects OSD failures to show 3-way replication riding through
// them (§4.2, §5.1), then prints the Table 3 cost analysis (§6.1).
//
//	go run ./examples/storage_tco
package main

import (
	"context"
	"bytes"
	"fmt"
	"log"
	"strings"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
	"persona/internal/storage"
	"persona/internal/tco"
)

func main() {
	// Build a dataset directly inside the object store.
	ref, err := persona.SynthesizeGenome(300_000, 21)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := reads.NewSimulator(ref, reads.SimConfig{Seed: 22, N: 3000, ReadLen: 101})
	if err != nil {
		log.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	objStore, err := storage.NewObjectStore(storage.ObjectStoreConfig{OSDs: 7, Replication: 3})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := persona.ImportFASTQ(context.Background(), objStore, "ds", strings.NewReader(fq.String()), persona.RefSeqs(ref), 500); err != nil {
		log.Fatal(err)
	}
	stats := objStore.Stats()
	fmt.Printf("object store: %d blobs, %d logical bytes, %d physical bytes (3x replication)\n",
		stats.Puts, stats.BytesIn, stats.ReplicatedBytesIn)
	fmt.Printf("per-OSD bytes: %v\n", objStore.OSDBytes())

	// Fail two OSDs; with 3-way replication every blob survives.
	if err := objStore.FailOSD(2); err != nil {
		log.Fatal(err)
	}
	if err := objStore.FailOSD(5); err != nil {
		log.Fatal(err)
	}
	ds, err := persona.OpenDataset(objStore, "ds")
	if err != nil {
		log.Fatal(err)
	}
	bases, err := ds.ReadAllBases()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failing OSDs 2 and 5: all %d reads still readable (%d degraded reads)\n",
		len(bases), objStore.Stats().DegradedReads)
	if err := objStore.RecoverOSD(2); err != nil {
		log.Fatal(err)
	}
	if err := objStore.RecoverOSD(5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("OSDs recovered and re-replicated")

	// Table 3.
	report, err := tco.Default().Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 3 — cluster TCO:")
	for _, item := range report.Items {
		fmt.Printf("  %-16s $%9.0f x %2d = $%9.0f\n", item.Item, item.UnitCost, item.Units, item.Total)
	}
	fmt.Printf("  hardware total $%.0f, 5-year TCO $%.0f\n", report.HardwareTotal, report.TCO5yr)
	fmt.Printf("  cost per alignment at full load: %.2f¢ (paper: 6.07¢)\n", report.CostPerAlignment*100)
	fmt.Printf("  storage per genome: $%.2f — Glacier for 5 years: $%.2f\n",
		report.StoragePerGenome, report.GlacierPerGenome5yr)
	fmt.Println("  computation is cheap; long-term storage dominates (§6.1)")

	// Nation-scale sizing (§6.1 case 3).
	c, s := tco.Default().ScaleForGenomes(86_400)
	fmt.Printf("  sequencing 86,400 genomes/day would need ~%d compute and ~%d storage servers (60:7 rule)\n", c, s)
}
