// WGS pipeline: the full whole-genome-sequencing preprocessing workflow the
// paper targets (§1) — import, align, sort by coordinate, mark duplicates,
// export BAM — with per-stage timing, mirroring how §5 measures each step.
//
//	go run ./examples/wgs_pipeline
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

func stage(name string, fn func() error) {
	start := time.Now()
	if err := fn(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-22s %v\n", name, time.Since(start).Round(time.Millisecond))
}

func main() {
	const (
		genomeSize = 2_000_000
		numReads   = 20_000
		readLen    = 101
		dupFrac    = 0.12
	)
	fmt.Printf("workload: %d-base genome, %d x %d bp reads, %.0f%% duplicates\n\n",
		genomeSize, numReads, readLen, dupFrac*100)

	ref, err := persona.SynthesizeGenome(genomeSize, 7)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := reads.NewSimulator(ref, reads.SimConfig{
		Seed: 8, N: numReads, ReadLen: readLen, DuplicateFraction: dupFrac,
	})
	if err != nil {
		log.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	fw := fastq.NewWriter(&fq)
	for i := range rs {
		if err := fw.Write(&rs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		log.Fatal(err)
	}

	store := persona.NewMemStore()
	idx, err := persona.BuildIndex(ref)
	if err != nil {
		log.Fatal(err)
	}

	stage("import FASTQ -> AGD", func() error {
		_, _, err := persona.ImportFASTQ(store, "wgs", strings.NewReader(fq.String()), persona.RefSeqs(ref), 2000)
		return err
	})

	var alignReport *persona.AlignReport
	stage("align (SNAP)", func() error {
		r, _, err := persona.Align(context.Background(), store, "wgs", idx, persona.AlignOptions{})
		alignReport = r
		return err
	})
	fmt.Printf("%-22s %.2f Mbases/s, %d chunks\n", "  throughput", alignReport.BasesPerSec/1e6, alignReport.Chunks)

	stage("sort by location", func() error {
		_, err := persona.Sort(store, "wgs", persona.ByLocation, "wgs.sorted")
		return err
	})

	var dups persona.DupStats
	stage("mark duplicates", func() error {
		var err error
		dups, err = persona.MarkDuplicates(store, "wgs.sorted")
		return err
	})
	fmt.Printf("%-22s %d/%d reads (%.1f%%)\n", "  duplicates",
		dups.Duplicates, dups.Reads, 100*float64(dups.Duplicates)/float64(dups.Reads))

	var bamSize int
	stage("export BAM", func() error {
		var bam bytes.Buffer
		if _, err := persona.ExportBAM(store, "wgs.sorted", &bam); err != nil {
			return err
		}
		bamSize = bam.Len()
		return nil
	})
	fmt.Printf("%-22s %d bytes\n", "  BAM size", bamSize)
	fmt.Println("\npipeline complete: wgs.sorted carries aligned, coordinate-sorted, duplicate-marked reads")
}
