// WGS pipeline: the full whole-genome-sequencing preprocessing workflow the
// paper targets (§1) — import, align, sort by coordinate, mark duplicates,
// export BAM — run two ways over the same reads:
//
//   - staged: the one-shot free functions, each materializing its output in
//     the store (align writes results chunks, sort writes a ".sorted"
//     dataset, markdup rewrites it, export re-reads it), and
//   - fused: one Session/Pipeline graph, where chunks stream stage-to-stage
//     in memory and nothing intermediate is written (sort spills its
//     temporary runs only, and deletes them).
//
// The BAM bytes are identical; the wall-clock delta is the store round
// trips the fused graph never pays. PERF.md records the measured numbers.
//
//	go run ./examples/wgs_pipeline
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

func stage(name string, fn func() error) time.Duration {
	start := time.Now()
	if err := fn(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	d := time.Since(start)
	fmt.Printf("  %-22s %v\n", name, d.Round(time.Millisecond))
	return d
}

func main() {
	const (
		genomeSize = 2_000_000
		numReads   = 20_000
		readLen    = 101
		dupFrac    = 0.12
	)
	ctx := context.Background()
	fmt.Printf("workload: %d-base genome, %d x %d bp reads, %.0f%% duplicates\n\n",
		genomeSize, numReads, readLen, dupFrac*100)

	ref, err := persona.SynthesizeGenome(genomeSize, 7)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := reads.NewSimulator(ref, reads.SimConfig{
		Seed: 8, N: numReads, ReadLen: readLen, DuplicateFraction: dupFrac,
	})
	if err != nil {
		log.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	fw := fastq.NewWriter(&fq)
	for i := range rs {
		if err := fw.Write(&rs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		log.Fatal(err)
	}

	store := persona.NewMemStore()
	sess := persona.NewSession(store, persona.SessionOptions{})
	defer sess.Close()
	idx, err := sess.Index(ref)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"wgs.staged", "wgs.fused"} {
		if _, _, err := persona.ImportFASTQ(ctx, store, name, strings.NewReader(fq.String()), persona.RefSeqs(ref), 2000); err != nil {
			log.Fatal(err)
		}
	}

	// Staged path: every stage is a store round trip.
	fmt.Println("staged (free functions, intermediate datasets):")
	var stagedBAM bytes.Buffer
	stagedTotal := stage("align (SNAP)", func() error {
		_, _, err := persona.Align(ctx, store, "wgs.staged", idx, persona.AlignOptions{})
		return err
	})
	stagedTotal += stage("sort by location", func() error {
		_, err := persona.Sort(ctx, store, "wgs.staged", persona.ByLocation, "wgs.staged.sorted")
		return err
	})
	var dups persona.DupStats
	stagedTotal += stage("mark duplicates", func() error {
		var err error
		dups, err = persona.MarkDuplicates(ctx, store, "wgs.staged.sorted")
		return err
	})
	stagedTotal += stage("export BAM", func() error {
		_, err := persona.ExportBAM(ctx, store, "wgs.staged.sorted", &stagedBAM)
		return err
	})
	fmt.Printf("  %-22s %v\n", "total", stagedTotal.Round(time.Millisecond))
	fmt.Printf("  %-22s %d/%d reads (%.1f%%)\n\n", "duplicates",
		dups.Duplicates, dups.Reads, 100*float64(dups.Duplicates)/float64(dups.Reads))

	// Fused path: the same four stages as ONE streamed graph — no results
	// writeback, no .sorted dataset, no re-read before export.
	fmt.Println("fused (one Session/Pipeline graph, zero intermediates):")
	var fusedBAM bytes.Buffer
	report, err := sess.Read("wgs.fused").
		Align(idx, persona.AlignOptions{}).
		Sort(persona.ByLocation).
		MarkDuplicates().
		ExportBAM(&fusedBAM).
		Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range report.Stages {
		fmt.Printf("  %-22s %v\n", st.Stage, st.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("  %-22s %v\n", "total", report.Elapsed.Round(time.Millisecond))
	fmt.Printf("  %-22s %d/%d reads (%.1f%%)\n", "duplicates",
		report.Dups.Duplicates, report.Dups.Reads, 100*float64(report.Dups.Duplicates)/float64(report.Dups.Reads))
	fmt.Printf("  %-22s %d tasks, %d stolen\n\n", "executor", report.Executor.Completed, report.Executor.Steals)

	if bytes.Equal(stagedBAM.Bytes(), fusedBAM.Bytes()) {
		fmt.Printf("BAM outputs identical (%d bytes); fused is %.2fx the staged wall time\n",
			fusedBAM.Len(), report.Elapsed.Seconds()/stagedTotal.Seconds())
	} else {
		log.Fatalf("BAM outputs differ: staged %d bytes, fused %d bytes", stagedBAM.Len(), fusedBAM.Len())
	}
}
