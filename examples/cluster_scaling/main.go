// Cluster scaling: distributed alignment across worker nodes coordinated by
// a TCP manifest server (§5.2), followed by the paper-scale discrete-event
// projection of Fig. 7 (linear to ~60 nodes, then write-limited).
//
//	go run ./examples/cluster_scaling
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"persona"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
	"persona/internal/simulate"
	"persona/internal/storage"
)

func main() {
	ref, err := persona.SynthesizeGenome(1_000_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := reads.NewSimulator(ref, reads.SimConfig{Seed: 12, N: 10_000, ReadLen: 101})
	if err != nil {
		log.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	idx, err := persona.BuildIndex(ref)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("real distributed runtime (in-process nodes, TCP manifest server):")
	var profiled *storage.RetryStore
	for _, nodes := range []int{1, 2, 4} {
		store := persona.NewRetryStore(persona.NewMemStore(), persona.RetryPolicy{})
		if _, _, err := persona.ImportFASTQ(context.Background(), store, "ds", strings.NewReader(fq.String()), persona.RefSeqs(ref), 1000); err != nil {
			log.Fatal(err)
		}
		report, _, err := persona.AlignDistributed(context.Background(), store, "ds", idx, nodes, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d node(s): %7.2f Mbases/s  imbalance %.1f%%  (%d chunks over %d nodes)\n",
			nodes, report.BasesPerSec/1e6, report.Imbalance*100, chunksOf(report), len(report.Nodes))
		profiled = store
	}

	fmt.Println("\nreal distributed fused pipeline (read → align → sort → markdup → export):")
	for _, nodes := range []int{1, 2, 4} {
		store := persona.NewMemStore()
		if _, _, err := persona.ImportFASTQ(context.Background(), store, "ds", strings.NewReader(fq.String()), persona.RefSeqs(ref), 1000); err != nil {
			log.Fatal(err)
		}
		sess := persona.NewSession(store, persona.SessionOptions{})
		var sam bytes.Buffer
		report, err := sess.Read("ds").
			Align(idx, persona.AlignOptions{}).
			Sort(persona.ByLocation).
			MarkDuplicates().
			ExportSAM(&sam).
			Distributed(nodes).
			Run(context.Background())
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		c := report.Cluster
		fmt.Printf("  %d node(s): %7d records in %8s  shuffle %5.1f MiB  skew %.2f\n",
			nodes, report.Records, c.Elapsed.Round(time.Millisecond),
			float64(c.ShuffleBytes)/(1<<20), c.PartitionSkew)
	}

	// Seed the paper-scale calibration's storage side from the bandwidth
	// and latency the runs above actually measured, instead of the
	// hardcoded constants.
	params := simulate.DefaultPaperParams()
	if lat, mbps, n := profiled.ReadProfile(); n > 0 {
		params = simulate.ParamsFromProfile(params, lat, mbps, n)
	}

	fmt.Println("\npaper-scale projection (Fig. 7 discrete-event model):")
	points, err := simulate.Fig7(simulate.DefaultPaperParams(), []int{1, 8, 16, 32, 60, 80, 100})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		bar := strings.Repeat("#", int(p.BasesPerSec/1e9*20))
		fmt.Printf("  %3d nodes %8.3f Gbases/s %6.1f s/genome %s\n", p.Nodes, p.BasesPerSec/1e9, p.Seconds, bar)
	}
	fmt.Println("\nthe 32-node point is the paper's headline: ~1.35 Gbases/s, a genome in ~16.7 s")

	fmt.Println("\npaper-scale distributed fused pipeline (three-phase DES, profile-seeded):")
	dp, err := simulate.DistScaling(params, []int{1, 8, 16, 32, 60})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range dp {
		fmt.Printf("  %3d nodes %8.3f Gbases/s %6.1f s/genome\n", p.Nodes, p.BasesPerSec/1e9, p.Seconds)
	}
}

func chunksOf(r *persona.ClusterReport) int {
	total := 0
	for _, n := range r.Nodes {
		total += n.Chunks
	}
	return total
}
