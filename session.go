package persona

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/cluster"
	"persona/internal/dataflow"
	"persona/internal/tco"
)

// SessionOptions configures a Session.
type SessionOptions struct {
	// ExecutorThreads sizes the session's shared work-stealing executor;
	// 0 means GOMAXPROCS.
	ExecutorThreads int
	// Prefetch is the default chunk-fetch window of pipeline sources: how
	// many chunks' column blobs are kept in flight, counting the one being
	// processed. 0 picks the stream default.
	Prefetch int
	// CacheBytes is the byte budget of the session's read-through decoded
	// chunk cache: pipeline sources serve repeat chunk reads from it,
	// skipping the fetch, CRC verify and decode entirely (hot references,
	// repeat jobs in the server). 0 picks DefaultCacheBytes; negative
	// disables the cache.
	CacheBytes int64
}

// DefaultCacheBytes is the chunk cache budget when SessionOptions.CacheBytes
// is zero: enough for the hot columns of a reference-scale dataset without
// crowding out the arenas and pools of an active pipeline.
const DefaultCacheBytes int64 = 64 << 20

// Session owns the long-lived resources Persona pipelines share: the blob
// store, one sharded work-stealing executor (all fine-grain compute), the
// sharded pool of decoded chunks pipeline sources stream through, and a
// reference-index cache — so serving many pipeline runs reuses warm state
// instead of rebuilding executors, pools and indexes per call (§4.1: the
// client library composes graphs over one runtime). Sessions are safe for
// concurrent pipeline runs. Close releases the executor.
type Session struct {
	store     Store
	exec      *dataflow.Executor
	chunkPool *dataflow.ShardedItemPool[*agd.Chunk]
	cache     *agd.ChunkCache // nil when disabled
	prefetch  int
	seq       atomic.Uint64 // distinct spill prefixes for concurrent sorts

	mu        sync.Mutex
	indexes   map[*Genome]*Index
	manifests map[string]*agd.Manifest // dataset name → parsed manifest
	verified  map[string]bool          // dataset+"\x00"+column → blobs probed OK
	closed    bool
}

// NewSession opens a session over a store.
func NewSession(store Store, opts SessionOptions) *Session {
	threads := opts.ExecutorThreads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	exec := dataflow.NewExecutor(threads, threads*2)
	// The chunk pool bounds how many decoded column chunks all concurrent
	// pipelines hold: a pull-based pipeline keeps at most one group (plus
	// one being decoded) checked out per source, so a handful of groups'
	// worth of columns per shard gives several concurrent pipelines slack
	// while still back-pressuring a runaway source.
	poolSize := 8 * 4 * exec.NumShards()
	var cache *agd.ChunkCache
	if opts.CacheBytes >= 0 {
		budget := opts.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		}
		cache = agd.NewChunkCache(budget)
	}
	return &Session{
		store:     store,
		exec:      exec,
		chunkPool: agd.NewShardedChunkPool(exec.NumShards(), poolSize),
		cache:     cache,
		prefetch:  opts.Prefetch,
		indexes:   make(map[*Genome]*Index),
		manifests: make(map[string]*agd.Manifest),
		verified:  make(map[string]bool),
	}
}

// Store returns the session's blob store.
func (s *Session) Store() Store { return s.store }

// Executor exposes the session's shared executor (for wiring into
// lower-level APIs such as cluster alignment).
func (s *Session) Executor() *dataflow.Executor { return s.exec }

// Index returns the SNAP seed index for a reference genome, building it on
// first use and caching it for the session's lifetime — the warm-index
// reuse that makes repeated align requests cheap.
func (s *Session) Index(g *Genome) (*Index, error) {
	s.mu.Lock()
	idx, ok := s.indexes[g]
	s.mu.Unlock()
	if ok {
		return idx, nil
	}
	idx, err := snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if cached, ok := s.indexes[g]; ok {
		idx = cached // lost a build race; keep one copy
	} else {
		s.indexes[g] = idx
	}
	s.mu.Unlock()
	return idx, nil
}

// AlignDistributed runs a distributed alignment of a dataset in the
// session's store, with every worker node submitting to the session's
// shared executor and the seed index coming from the session's warm cache.
func (s *Session) AlignDistributed(ctx context.Context, dataset string, ref *Genome, nodes, threadsPerNode int) (*ClusterReport, *Manifest, error) {
	idx, err := s.Index(ref)
	if err != nil {
		return nil, nil, err
	}
	// A repeat align of the same dataset re-registers the results column; if
	// this session already probed those blobs once, skip the per-chunk
	// round trips on the final RegisterColumn.
	verKey := dataset + "\x00" + agd.ColResults
	s.mu.Lock()
	skipCheck := s.verified[verKey]
	s.mu.Unlock()
	rep, m, err := cluster.Align(ctx, s.store, dataset, idx, cluster.Config{
		Nodes:           nodes,
		ThreadsPerNode:  threadsPerNode,
		Executor:        s.exec,
		SkipColumnCheck: skipCheck,
	})
	if err != nil {
		return rep, m, err
	}
	// The align rewrote the dataset's results blobs and manifest: cached
	// decoded chunks and the remembered manifest are stale. Replace the
	// manifest with the one the align just produced and mark the results
	// column verified (the register round either probed it or reused a
	// previous probe).
	s.invalidateDataset(dataset)
	s.mu.Lock()
	s.manifests[dataset] = m
	s.verified[verKey] = true
	s.mu.Unlock()
	return rep, m, nil
}

// openDataset opens a dataset through the session's manifest cache: reading
// back a dataset this session just wrote or aligned skips the manifest
// Get+parse round trip. Only manifests the session itself produced are
// served from memory — a dataset it merely read before may have been
// rewritten by another writer, so those always re-open from the store.
func (s *Session) openDataset(name string) (*agd.Dataset, error) {
	s.mu.Lock()
	m := s.manifests[name]
	s.mu.Unlock()
	if m != nil {
		return agd.OpenManifest(s.store, m), nil
	}
	return agd.Open(s.store, name)
}

// rememberManifest records the manifest of a dataset this session just
// wrote, so an immediately following read skips the open round trip.
func (s *Session) rememberManifest(name string, m *agd.Manifest) {
	s.mu.Lock()
	s.manifests[name] = m
	s.mu.Unlock()
}

// invalidateDataset drops everything the session cached about a dataset —
// decoded chunks, the parsed manifest, column probes — because its blobs
// were just rewritten.
func (s *Session) invalidateDataset(name string) {
	s.mu.Lock()
	delete(s.manifests, name)
	for k := range s.verified {
		if ds, _, ok := cutVerifiedKey(k); ok && ds == name {
			delete(s.verified, k)
		}
	}
	s.mu.Unlock()
	if s.cache != nil {
		s.cache.InvalidatePrefix(name + "/")
	}
}

func cutVerifiedKey(k string) (dataset, col string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:], true
		}
	}
	return "", "", false
}

// CacheStats snapshots the session chunk cache's counters; ok is false when
// the cache is disabled.
func (s *Session) CacheStats() (stats CacheStats, ok bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// FlushCache empties the chunk cache and forgets cached manifests and column
// probes, returning what was dropped. The admin escape hatch for when the
// store was mutated behind the session's back.
func (s *Session) FlushCache() (entries int, bytes int64) {
	s.mu.Lock()
	s.manifests = make(map[string]*agd.Manifest)
	s.verified = make(map[string]bool)
	s.mu.Unlock()
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Flush()
}

// spillDecider builds the cost-driven spill-compression policy for this
// session's sorts: when the store is resilience-wrapped, its measured read
// profile feeds tco.SpillPolicy and each superchunk run is priced
// individually; otherwise (no evidence) runs stay raw. The returned decider
// is nil-safe for agdsort.Options.
func (s *Session) spillDecider() func(runBytes int64) (agd.Compression, string) {
	profiler, ok := s.store.(interface {
		ReadProfile() (time.Duration, float64, int)
	})
	if !ok {
		return nil
	}
	return func(runBytes int64) (agd.Compression, string) {
		lat, mbps, samples := profiler.ReadProfile()
		policy := tco.SpillPolicy{Profile: tco.StorageProfile{
			ReadLatency: lat,
			ReadMBps:    mbps,
			Samples:     samples,
		}}
		dec := policy.Decide(runBytes)
		if dec.Compress {
			return agd.CompressGzip, dec.Reason
		}
		return agd.CompressNone, dec.Reason
	}
}

// Close releases the session's executor. Pipelines must not be run (or be
// in flight) after Close.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.exec.Close()
}

// tempPrefix returns a session-unique prefix for a pipeline's spill blobs.
func (s *Session) tempPrefix() string {
	return fmt.Sprintf(".pipeline/%d/tmp", s.seq.Add(1))
}

// PoolStats reports the session chunk pool's bound and how many chunks are
// currently free — equal when no pipeline holds pooled chunks, which is the
// leak check tests use after cancelled runs.
func (s *Session) PoolStats() (size, free int) {
	return s.chunkPool.Size(), s.chunkPool.Free()
}

// ResilienceStats returns the cumulative retry/hedge counters of the
// session's store when it is resilience-wrapped (NewRetryStore); ok is false
// for a plain store.
func (s *Session) ResilienceStats() (stats StorageStats, ok bool) {
	if rs, isRS := s.store.(interface{ RetryStats() StorageStats }); isRS {
		return rs.RetryStats(), true
	}
	return StorageStats{}, false
}
