package persona

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/cluster"
	"persona/internal/dataflow"
)

// SessionOptions configures a Session.
type SessionOptions struct {
	// ExecutorThreads sizes the session's shared work-stealing executor;
	// 0 means GOMAXPROCS.
	ExecutorThreads int
	// Prefetch is the default chunk-fetch window of pipeline sources: how
	// many chunks' column blobs are kept in flight, counting the one being
	// processed. 0 picks the stream default.
	Prefetch int
}

// Session owns the long-lived resources Persona pipelines share: the blob
// store, one sharded work-stealing executor (all fine-grain compute), the
// sharded pool of decoded chunks pipeline sources stream through, and a
// reference-index cache — so serving many pipeline runs reuses warm state
// instead of rebuilding executors, pools and indexes per call (§4.1: the
// client library composes graphs over one runtime). Sessions are safe for
// concurrent pipeline runs. Close releases the executor.
type Session struct {
	store     Store
	exec      *dataflow.Executor
	chunkPool *dataflow.ShardedItemPool[*agd.Chunk]
	prefetch  int
	seq       atomic.Uint64 // distinct spill prefixes for concurrent sorts

	mu      sync.Mutex
	indexes map[*Genome]*Index
	closed  bool
}

// NewSession opens a session over a store.
func NewSession(store Store, opts SessionOptions) *Session {
	threads := opts.ExecutorThreads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	exec := dataflow.NewExecutor(threads, threads*2)
	// The chunk pool bounds how many decoded column chunks all concurrent
	// pipelines hold: a pull-based pipeline keeps at most one group (plus
	// one being decoded) checked out per source, so a handful of groups'
	// worth of columns per shard gives several concurrent pipelines slack
	// while still back-pressuring a runaway source.
	poolSize := 8 * 4 * exec.NumShards()
	return &Session{
		store:     store,
		exec:      exec,
		chunkPool: agd.NewShardedChunkPool(exec.NumShards(), poolSize),
		prefetch:  opts.Prefetch,
		indexes:   make(map[*Genome]*Index),
	}
}

// Store returns the session's blob store.
func (s *Session) Store() Store { return s.store }

// Executor exposes the session's shared executor (for wiring into
// lower-level APIs such as cluster alignment).
func (s *Session) Executor() *dataflow.Executor { return s.exec }

// Index returns the SNAP seed index for a reference genome, building it on
// first use and caching it for the session's lifetime — the warm-index
// reuse that makes repeated align requests cheap.
func (s *Session) Index(g *Genome) (*Index, error) {
	s.mu.Lock()
	idx, ok := s.indexes[g]
	s.mu.Unlock()
	if ok {
		return idx, nil
	}
	idx, err := snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if cached, ok := s.indexes[g]; ok {
		idx = cached // lost a build race; keep one copy
	} else {
		s.indexes[g] = idx
	}
	s.mu.Unlock()
	return idx, nil
}

// AlignDistributed runs a distributed alignment of a dataset in the
// session's store, with every worker node submitting to the session's
// shared executor and the seed index coming from the session's warm cache.
func (s *Session) AlignDistributed(ctx context.Context, dataset string, ref *Genome, nodes, threadsPerNode int) (*ClusterReport, *Manifest, error) {
	idx, err := s.Index(ref)
	if err != nil {
		return nil, nil, err
	}
	return cluster.Align(ctx, s.store, dataset, idx, cluster.Config{
		Nodes:          nodes,
		ThreadsPerNode: threadsPerNode,
		Executor:       s.exec,
	})
}

// Close releases the session's executor. Pipelines must not be run (or be
// in flight) after Close.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.exec.Close()
}

// tempPrefix returns a session-unique prefix for a pipeline's spill blobs.
func (s *Session) tempPrefix() string {
	return fmt.Sprintf(".pipeline/%d/tmp", s.seq.Add(1))
}

// PoolStats reports the session chunk pool's bound and how many chunks are
// currently free — equal when no pipeline holds pooled chunks, which is the
// leak check tests use after cancelled runs.
func (s *Session) PoolStats() (size, free int) {
	return s.chunkPool.Size(), s.chunkPool.Free()
}

// ResilienceStats returns the cumulative retry/hedge counters of the
// session's store when it is resilience-wrapped (NewRetryStore); ok is false
// for a plain store.
func (s *Session) ResilienceStats() (stats StorageStats, ok bool) {
	if rs, isRS := s.store.(interface{ RetryStats() StorageStats }); isRS {
		return rs.RetryStats(), true
	}
	return StorageStats{}, false
}
