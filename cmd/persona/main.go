// Command persona is the command-line front end of the framework: dataset
// import/export, alignment (single-server or distributed), sorting,
// duplicate marking and dataset inspection over AGD datasets in a local
// directory store.
//
// Usage:
//
//	persona import  -store DIR -name DS [-fastq FILE|-] [-gz] [-chunk N]
//	persona index   -store DIR -genome-size N -seed S        (synthetic reference)
//	persona align   -store DIR -name DS [-nodes N] [-threads N]
//	persona sort    -store DIR -name DS [-by location|metadata] [-out DS2]
//	persona markdup -store DIR -name DS
//	persona filter  -store DIR -name DS [-minmapq N] [-dedup] [-out DS2]
//	persona varcall -store DIR -name DS [-o FILE|-]
//	persona import-sam -store DIR -name DS [-sam FILE|-]
//	persona export  -store DIR -name DS -format sam|bam|fastq [-o FILE|-]
//	persona info    -store DIR -name DS
//	persona run     -store DIR -name DS [-align] [-sort location|metadata] [-markdup] [-minmapq N] [-dedup] [-nodes N] -format sam|bam|fastq [-o FILE|-]
//	persona submit  -server URL [-tenant T] -name DS [-align] [-sort location|metadata] [-markdup] [-minmapq N] [-dedup] -format sam|bam|fastq [-wait] [-o FILE|-]
//	persona status  -server URL [-tenant T] [-id JOB]
//	persona fetch   -server URL [-tenant T] -id JOB [-o FILE|-]
//
// The synthetic reference substitutes for hg19; `persona
// index` persists it in the store so later commands can rebuild the seed
// index deterministically.
//
// submit/status/fetch talk to a running persona-server; every command
// cancels its work cleanly on Ctrl-C (SIGINT/SIGTERM).
package main

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"persona"
	"persona/internal/agd"
	"persona/internal/genome"
	"persona/internal/jobs"
)

// gzipReader wraps a reader with gzip decompression.
func gzipReader(r io.Reader) (*gzip.Reader, error) { return gzip.NewReader(r) }

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	// Ctrl-C / SIGTERM cancels the command's context: pipelines stop at the
	// next chunk boundary, pooled chunks go back, and partial spill blobs
	// are cleaned up instead of orphaned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cmd {
	case "import":
		err = cmdImport(ctx, args)
	case "index":
		err = cmdIndex(ctx, args)
	case "align":
		err = cmdAlign(ctx, args)
	case "sort":
		err = cmdSort(ctx, args)
	case "markdup":
		err = cmdMarkdup(ctx, args)
	case "export":
		err = cmdExport(ctx, args)
	case "info":
		err = cmdInfo(ctx, args)
	case "import-sam":
		err = cmdImportSAM(ctx, args)
	case "filter":
		err = cmdFilter(ctx, args)
	case "varcall":
		err = cmdVarcall(ctx, args)
	case "run":
		err = cmdRun(ctx, args)
	case "submit":
		err = cmdSubmit(ctx, args)
	case "status":
		err = cmdStatus(ctx, args)
	case "fetch":
		err = cmdFetch(ctx, args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "persona %s: interrupted\n", cmd)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "persona %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: persona <import|import-sam|index|align|sort|markdup|filter|varcall|export|run|info|submit|status|fetch> [flags]")
	fmt.Fprintln(os.Stderr, "run 'persona <command> -h' for command flags")
}

// refMeta is the synthetic-reference descriptor `persona index` stores.
type refMeta struct {
	GenomeSize int   `json:"genome_size"`
	Seed       int64 `json:"seed"`
}

const refMetaBlob = "_reference/meta.json"

func openStore(dir string) (persona.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("missing -store")
	}
	return persona.NewLocalStore(dir)
}

func loadReference(store persona.Store) (*genome.Genome, error) {
	blob, err := store.Get(refMetaBlob)
	if err != nil {
		return nil, fmt.Errorf("no reference in store (run 'persona index' first): %w", err)
	}
	var meta refMeta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, err
	}
	return persona.SynthesizeGenome(meta.GenomeSize, meta.Seed)
}

func cmdIndex(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	size := fs.Int("genome-size", 8_000_000, "synthetic reference size in bases")
	seed := fs.Int64("seed", 42, "synthetic reference seed")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	meta, err := json.Marshal(refMeta{GenomeSize: *size, Seed: *seed})
	if err != nil {
		return err
	}
	if err := store.Put(refMetaBlob, meta); err != nil {
		return err
	}
	g, err := persona.SynthesizeGenome(*size, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("reference: %s\n", g)
	return nil
}

func cmdImport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	fastqPath := fs.String("fastq", "-", "FASTQ input file ('-' for stdin)")
	gz := fs.Bool("gz", false, "input is gzip-compressed")
	chunk := fs.Int("chunk", agd.DefaultChunkSize, "records per AGD chunk")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}

	var in io.Reader = os.Stdin
	if *fastqPath != "-" {
		f, err := os.Open(*fastqPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	if *gz {
		// fastq.NewGzipScanner handles decompression inside Import when
		// wrapped here.
		zr, err := gzipReader(in)
		if err != nil {
			return err
		}
		defer zr.Close()
		in = zr
	}

	var refs []agd.RefSeq
	if g, err := loadReference(store); err == nil {
		refs = persona.RefSeqs(g)
	}
	m, n, err := persona.ImportFASTQ(ctx, store, *name, in, refs, *chunk)
	if err != nil {
		return err
	}
	fmt.Printf("imported %d reads into %q (%d chunks)\n", n, m.Name, len(m.Chunks))
	return nil
}

func cmdAlign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("align", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	nodes := fs.Int("nodes", 0, "distributed worker nodes (0 = single-server pipeline)")
	threads := fs.Int("threads", 2, "executor threads (per node when distributed)")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	g, err := loadReference(store)
	if err != nil {
		return err
	}
	idx, err := persona.BuildIndex(g)
	if err != nil {
		return err
	}
	if *nodes > 0 {
		report, _, err := persona.AlignDistributed(ctx, store, *name, idx, *nodes, *threads)
		if err != nil {
			return err
		}
		fmt.Printf("aligned %d reads (%d bases) on %d nodes in %s: %.2f Mbases/s, imbalance %.1f%%\n",
			report.TotalReads, report.TotalBases, *nodes, report.Elapsed,
			report.BasesPerSec/1e6, report.Imbalance*100)
		return nil
	}
	report, _, err := persona.Align(ctx, store, *name, idx, persona.AlignOptions{ExecutorThreads: *threads})
	if err != nil {
		return err
	}
	fmt.Printf("aligned %d reads (%d bases) in %s: %.2f Mbases/s\n",
		report.Reads, report.Bases, report.Elapsed, report.BasesPerSec/1e6)
	return nil
}

func cmdSort(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sort", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	by := fs.String("by", "location", "sort key: location or metadata")
	out := fs.String("out", "", "output dataset name (default <name>.sorted)")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	key := persona.ByLocation
	if *by == "metadata" {
		key = persona.ByMetadata
	} else if *by != "location" {
		return fmt.Errorf("unknown sort key %q", *by)
	}
	m, err := persona.Sort(ctx, store, *name, key, *out)
	if err != nil {
		return err
	}
	fmt.Printf("sorted %d records into %q (by %s)\n", m.NumRecords(), m.Name, m.SortedBy)
	return nil
}

func cmdMarkdup(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("markdup", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	stats, err := persona.MarkDuplicates(ctx, store, *name)
	if err != nil {
		return err
	}
	fmt.Printf("marked %d duplicates among %d reads (%.2f%%)\n",
		stats.Duplicates, stats.Reads, 100*float64(stats.Duplicates)/float64(stats.Reads))
	return nil
}

func cmdExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	format := fs.String("format", "sam", "output format: sam, bam or fastq")
	outPath := fs.String("o", "-", "output file ('-' for stdout)")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var n uint64
	switch *format {
	case "sam":
		n, err = persona.ExportSAM(ctx, store, *name, out)
	case "bam":
		n, err = persona.ExportBAM(ctx, store, *name, out)
	case "fastq":
		n, err = persona.ExportFASTQ(ctx, store, *name, out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d records as %s\n", n, *format)
	return nil
}

func cmdInfo(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	ds, err := persona.OpenDataset(store, *name)
	if err != nil {
		return err
	}
	m := ds.Manifest
	fmt.Printf("dataset:  %s\n", m.Name)
	fmt.Printf("records:  %d in %d chunks\n", m.NumRecords(), len(m.Chunks))
	fmt.Printf("columns:  %v\n", m.Columns)
	if m.SortedBy != "" {
		fmt.Printf("sorted:   by %s\n", m.SortedBy)
	}
	if len(m.RefSeqs) > 0 {
		fmt.Printf("refs:     ")
		for i, r := range m.RefSeqs {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s(%d)", r.Name, r.Length)
		}
		fmt.Println()
	}
	return nil
}

func cmdImportSAM(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("import-sam", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	samPath := fs.String("sam", "-", "SAM input file ('-' for stdin)")
	chunk := fs.Int("chunk", agd.DefaultChunkSize, "records per AGD chunk")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	var in io.Reader = os.Stdin
	if *samPath != "-" {
		f, err := os.Open(*samPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	m, n, err := persona.ImportSAM(ctx, store, *name, in, *chunk)
	if err != nil {
		return err
	}
	fmt.Printf("imported %d aligned records into %q (%d chunks, columns %v)\n",
		n, m.Name, len(m.Chunks), m.Columns)
	return nil
}

func cmdFilter(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	out := fs.String("out", "", "output dataset name (default <name>.filtered)")
	minMapQ := fs.Int("minmapq", 0, "keep reads with at least this mapping quality")
	mapped := fs.Bool("mapped", false, "keep only mapped reads")
	dedup := fs.Bool("dedup", false, "drop duplicate-flagged reads (run markdup first)")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	var preds []persona.FilterPredicate
	if *minMapQ > 0 {
		preds = append(preds, persona.FilterMinMapQ(uint8(*minMapQ)))
	}
	if *mapped {
		preds = append(preds, persona.FilterMappedOnly())
	}
	if *dedup {
		preds = append(preds, persona.FilterDropDuplicates())
	}
	if len(preds) == 0 {
		return fmt.Errorf("no predicate: pass -minmapq, -mapped and/or -dedup")
	}
	m, stats, err := persona.Filter(ctx, store, *name, persona.FilterAnd(preds...), *out)
	if err != nil {
		return err
	}
	fmt.Printf("kept %d/%d records into %q\n", stats.Kept, stats.In, m.Name)
	return nil
}

func cmdVarcall(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("varcall", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	outPath := fs.String("o", "-", "VCF output file ('-' for stdout)")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	ref, err := loadReference(store)
	if err != nil {
		return err
	}
	variants, err := persona.CallVariants(ctx, store, *name, ref)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := persona.WriteVCF(out, ref, variants); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "called %d variants\n", len(variants))
	return nil
}

// cmdRun composes one fused Session/Pipeline graph over a dataset: optional
// align / sort / markdup / filter stages ending in an export — chunks
// stream stage-to-stage, with no intermediate dataset written to the store.
func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory")
	name := fs.String("name", "", "dataset name")
	alignStage := fs.Bool("align", false, "align the dataset (needs 'persona index' first)")
	sortBy := fs.String("sort", "", "sort stage: location or metadata")
	markdup := fs.Bool("markdup", false, "mark duplicates")
	minMapQ := fs.Int("minmapq", 0, "filter: keep reads with at least this mapping quality")
	dedup := fs.Bool("dedup", false, "filter: drop duplicate-flagged reads")
	format := fs.String("format", "sam", "output format: sam, bam or fastq")
	outPath := fs.String("o", "-", "output file ('-' for stdout)")
	nodes := fs.Int("nodes", 0, "distributed worker nodes (0 = single-server pipeline; needs -sort)")
	fs.Parse(args)
	store, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("missing -name")
	}

	sess := persona.NewSession(store, persona.SessionOptions{})
	defer sess.Close()
	p := sess.Read(*name)
	if *alignStage {
		ref, err := loadReference(store)
		if err != nil {
			return err
		}
		idx, err := sess.Index(ref)
		if err != nil {
			return err
		}
		p = p.Align(idx, persona.AlignOptions{})
	}
	switch *sortBy {
	case "":
	case "location":
		p = p.Sort(persona.ByLocation)
	case "metadata":
		p = p.Sort(persona.ByMetadata)
	default:
		return fmt.Errorf("unknown sort key %q", *sortBy)
	}
	if *markdup {
		p = p.MarkDuplicates()
	}
	var preds []persona.FilterPredicate
	if *minMapQ > 0 {
		preds = append(preds, persona.FilterMinMapQ(uint8(*minMapQ)))
	}
	if *dedup {
		preds = append(preds, persona.FilterDropDuplicates())
	}
	if len(preds) > 0 {
		p = p.Filter(persona.FilterAnd(preds...))
	}

	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "sam":
		p = p.ExportSAM(out)
	case "bam":
		p = p.ExportBAM(out)
	case "fastq":
		p = p.ExportFASTQ(out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *nodes > 0 {
		p = p.Distributed(*nodes)
	}
	report, err := p.Run(ctx)
	if err != nil {
		return err
	}
	for _, st := range report.Stages {
		fmt.Fprintf(os.Stderr, "%-14s %8d records  %v\n", st.Stage, st.Records, st.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "%-14s %8d records  %v total\n", "pipeline", report.Records, report.Elapsed.Round(time.Millisecond))
	if c := report.Cluster; c != nil {
		fmt.Fprintf(os.Stderr, "cluster: %d nodes, %d partitions, shuffle %.1f MiB, skew %.2f, imbalance %.1f%%\n",
			len(c.Nodes), c.Partitions, float64(c.ShuffleBytes)/(1<<20), c.PartitionSkew, 100*c.Imbalance)
	}
	return nil
}

// serverClient builds a jobs.Client from the common -server/-tenant flags.
func serverClient(server, tenant string) (*jobs.Client, error) {
	if server == "" {
		return nil, fmt.Errorf("missing -server (e.g. http://127.0.0.1:7333)")
	}
	return &jobs.Client{Base: server, Tenant: tenant}, nil
}

// printJob renders one job line: ID, state, attempts, and either the error
// or the result size.
func printJob(st *jobs.JobStatus) {
	line := fmt.Sprintf("%-10s %-8s %-8s attempts=%d", st.ID, st.Tenant, st.State, st.Attempts)
	switch {
	case st.State == jobs.StateFailed:
		line += "  error: " + st.Error
	case st.State == jobs.StateDone && st.Result != nil:
		line += fmt.Sprintf("  %d records in %s", st.Result.Records, st.Result.Elapsed.Round(time.Millisecond))
	}
	fmt.Println(line)
}

// cmdSubmit posts a declarative pipeline job to a persona-server; with
// -wait it polls to completion, streams per-stage progress to stderr and
// writes the result to -o.
func cmdSubmit(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:7333", "persona-server base URL")
	tenant := fs.String("tenant", "", "tenant name (default assigned by server)")
	name := fs.String("name", "", "dataset name")
	alignStage := fs.Bool("align", false, "align the dataset against the server's reference")
	sortBy := fs.String("sort", "", "sort stage: location or metadata")
	markdup := fs.Bool("markdup", false, "mark duplicates")
	minMapQ := fs.Int("minmapq", 0, "filter: keep reads with at least this mapping quality")
	dedup := fs.Bool("dedup", false, "filter: drop duplicate-flagged reads")
	format := fs.String("format", "sam", "output format: sam, bam, fastq or dataset")
	wait := fs.Bool("wait", false, "poll until the job finishes and fetch the result")
	outPath := fs.String("o", "-", "result output file with -wait ('-' for stdout)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("missing -name")
	}
	c, err := serverClient(*server, *tenant)
	if err != nil {
		return err
	}
	spec := jobs.Spec{
		Dataset: *name, Align: *alignStage, Sort: *sortBy, MarkDup: *markdup,
		MinMapQ: *minMapQ, Dedup: *dedup, Format: *format,
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s\n", st.ID)
	if !*wait {
		fmt.Println(st.ID)
		return nil
	}
	fin, err := c.Wait(ctx, st.ID, 200*time.Millisecond)
	if err != nil {
		return err
	}
	if fin.State != jobs.StateDone {
		return fmt.Errorf("job %s %s: %s", fin.ID, fin.State, fin.Error)
	}
	for _, sp := range fin.Progress {
		fmt.Fprintf(os.Stderr, "%-14s %8d records\n", sp.Stage, sp.Records)
	}
	data, _, err := c.Result(ctx, fin.ID)
	if err != nil {
		return err
	}
	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(data); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s done: %d bytes\n", fin.ID, len(data))
	return nil
}

// cmdStatus shows one job (with live per-stage progress) or, without -id,
// every job the server knows about for the tenant.
func cmdStatus(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:7333", "persona-server base URL")
	tenant := fs.String("tenant", "", "tenant name filter")
	id := fs.String("id", "", "job ID (empty: list jobs)")
	fs.Parse(args)
	c, err := serverClient(*server, *tenant)
	if err != nil {
		return err
	}
	if *id == "" {
		sts, err := c.Jobs(ctx, *tenant)
		if err != nil {
			return err
		}
		for _, st := range sts {
			printJob(st)
		}
		return nil
	}
	st, err := c.Status(ctx, *id)
	if err != nil {
		return err
	}
	printJob(st)
	for _, sp := range st.Progress {
		state := "running"
		if sp.Done {
			state = "done"
		}
		fmt.Printf("  %-14s %8d records  %s\n", sp.Stage, sp.Records, state)
	}
	return nil
}

// cmdFetch downloads a finished job's result bytes.
func cmdFetch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:7333", "persona-server base URL")
	tenant := fs.String("tenant", "", "tenant name")
	id := fs.String("id", "", "job ID")
	outPath := fs.String("o", "-", "output file ('-' for stdout)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	c, err := serverClient(*server, *tenant)
	if err != nil {
		return err
	}
	data, ct, err := c.Result(ctx, *id)
	if err != nil {
		return err
	}
	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if _, err := out.Write(data); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fetched %s: %d bytes (%s)\n", *id, len(data), ct)
	return nil
}
