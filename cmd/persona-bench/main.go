// Command persona-bench regenerates the paper's evaluation: every table and
// figure of §5/§6, printing modeled paper-scale numbers alongside real
// measurements on synthetic workloads.
//
// Usage:
//
//	persona-bench -run all
//	persona-bench -run table1,fig7
//	persona-bench -run table2 -reads 20000 -genome 2000000
//
// Experiment ids: table1, table2, table3, fig5, fig6, fig7, fig8, dupmark,
// conv, all. See EXPERIMENTS.md for recorded output and DESIGN.md for the
// experiment-to-module map.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"persona/internal/experiments"
)

func main() {
	// Ctrl-C / SIGTERM cancels the in-flight experiment instead of leaving
	// a half-run measurement.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := flag.String("run", "all", "comma-separated experiment ids (table1,table2,table3,fig5,fig6,fig7,fig8,dupmark,conv,ablation,all)")
	genomeSize := flag.Int("genome", 0, "override measured-workload genome size in bases")
	numReads := flag.Int("reads", 0, "override measured-workload read count")
	readLen := flag.Int("readlen", 0, "override measured-workload read length")
	chunkSize := flag.Int("chunk", 0, "override measured-workload AGD chunk size")
	seed := flag.Int64("seed", 0, "override workload seed")
	flag.Parse()

	sc := experiments.SmallScale()
	if *genomeSize > 0 {
		sc.GenomeSize = *genomeSize
	}
	if *numReads > 0 {
		sc.NumReads = *numReads
	}
	if *readLen > 0 {
		sc.ReadLen = *readLen
	}
	if *chunkSize > 0 {
		sc.ChunkSize = *chunkSize
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	want := make(map[string]bool)
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	ran := 0

	out := os.Stdout
	fail := func(id string, err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "persona-bench: %s: interrupted\n", id)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "persona-bench: %s: %v\n", id, err)
		os.Exit(1)
	}

	if all || want["table1"] {
		ran++
		if _, err := experiments.Table1Simulated(out); err != nil {
			fail("table1", err)
		}
		dir, err := os.MkdirTemp("", "persona-table1")
		if err != nil {
			fail("table1", err)
		}
		defer os.RemoveAll(dir)
		if _, err := experiments.RunTable1Measured(ctx, out, sc, dir); err != nil {
			fail("table1", err)
		}
	}
	if all || want["fig5"] {
		ran++
		if _, err := experiments.RunFig5(out); err != nil {
			fail("fig5", err)
		}
	}
	if all || want["fig6"] {
		ran++
		experiments.RunFig6(out)
		if _, err := experiments.RunFig6Measured(ctx, out, sc, runtime.NumCPU()); err != nil {
			fail("fig6", err)
		}
	}
	if all || want["fig7"] {
		ran++
		if _, err := experiments.RunFig7(out); err != nil {
			fail("fig7", err)
		}
		if _, err := experiments.RunFig7Measured(ctx, out, sc, []int{1, 2, 4}); err != nil {
			fail("fig7", err)
		}
	}
	if all || want["table2"] {
		ran++
		if _, err := experiments.RunTable2(ctx, out, sc); err != nil {
			fail("table2", err)
		}
	}
	if all || want["dupmark"] {
		ran++
		if _, err := experiments.RunDupmark(ctx, out, sc); err != nil {
			fail("dupmark", err)
		}
	}
	if all || want["conv"] {
		ran++
		if _, err := experiments.RunConversion(ctx, out, sc); err != nil {
			fail("conv", err)
		}
	}
	if all || want["fig8"] {
		ran++
		if _, err := experiments.RunFig8(ctx, out, sc); err != nil {
			fail("fig8", err)
		}
	}
	if all || want["table3"] {
		ran++
		if _, err := experiments.RunTable3(out); err != nil {
			fail("table3", err)
		}
	}
	if all || want["ablation"] {
		ran++
		if _, err := experiments.RunChunkSizeAblation(ctx, out, sc); err != nil {
			fail("ablation", err)
		}
		if _, err := experiments.RunCompressionAblation(ctx, out, sc); err != nil {
			fail("ablation", err)
		}
		if _, err := experiments.RunSubchunkAblation(ctx, out, sc); err != nil {
			fail("ablation", err)
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "persona-bench: no experiment matched %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}
