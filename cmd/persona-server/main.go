// Command persona-server is the persona daemon: one warm Session serving
// declarative pipeline jobs over HTTP to many tenants. Jobs are journaled
// durably in the store before they are acknowledged, so a crashed server
// resumes interrupted work on restart; admission is bounded (load past the
// budget sheds with 429 + Retry-After) and SIGTERM drains gracefully —
// in-flight jobs get a grace window to finish, then checkpoint back to
// PENDING for the next incarnation.
//
// Usage:
//
//	persona-server -store DIR [-addr HOST:PORT] [-workers N]
//	               [-max-queued N] [-max-queued-mb MB] [-max-attempts N]
//	               [-deadline D] [-drain-grace D] [-weights a=2,b=1]
//	               [-resilient] [-cache-mb MB]
//
// The API (see internal/jobs/api.go):
//
//	POST /v1/jobs             submit a job spec        (X-Persona-Tenant header)
//	GET  /v1/jobs[?tenant=T]  list jobs
//	GET  /v1/jobs/{id}        status with live per-stage progress
//	GET  /v1/jobs/{id}/result fetch a DONE job's output
//	GET  /v1/stats            service counters (incl. chunk-cache hit rates)
//	POST /v1/cache/flush      drop the session caches after out-of-band writes
//	GET  /v1/healthz          liveness
//
// `persona submit/status/fetch` are the matching CLI client commands.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"persona"
	"persona/internal/jobs"
)

// refMeta mirrors the synthetic-reference descriptor `persona index` stores.
type refMeta struct {
	GenomeSize int   `json:"genome_size"`
	Seed       int64 `json:"seed"`
}

const refMetaBlob = "_reference/meta.json"

// loadReference rebuilds the store's synthetic reference, if one was
// indexed; a server without one simply rejects align jobs at admission.
func loadReference(store persona.Store) (*persona.Genome, error) {
	blob, err := store.Get(refMetaBlob)
	if err != nil {
		return nil, err
	}
	var meta refMeta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, err
	}
	return persona.SynthesizeGenome(meta.GenomeSize, meta.Seed)
}

// parseWeights reads "alice=2,bob=1" into a tenant-weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("weight %q: want tenant=N", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weight %q: want a positive integer", part)
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	fs := flag.NewFlagSet("persona-server", flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory (required)")
	addr := fs.String("addr", "127.0.0.1:7333", "listen address")
	workers := fs.Int("workers", 2, "concurrent jobs")
	maxQueued := fs.Int("max-queued", 64, "admission budget: queued jobs (past it, 429)")
	maxQueuedMB := fs.Int64("max-queued-mb", 256, "admission budget: estimated queued MiB")
	maxAttempts := fs.Int("max-attempts", 3, "attempt budget per job")
	deadline := fs.Duration("deadline", 2*time.Minute, "default per-attempt deadline")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "SIGTERM grace for in-flight jobs")
	weightsFlag := fs.String("weights", "", "tenant dispatch weights, e.g. a=2,b=1")
	resilient := fs.Bool("resilient", true, "wrap the store with the retry/hedge layer")
	cacheMB := fs.Int64("cache-mb", 64, "decoded-chunk cache budget in MiB (0 disables)")
	fs.Parse(os.Args[1:])

	if err := run(*storeDir, *addr, *workers, *maxQueued, *maxQueuedMB, *maxAttempts,
		*deadline, *drainGrace, *weightsFlag, *resilient, *cacheMB); err != nil {
		fmt.Fprintf(os.Stderr, "persona-server: %v\n", err)
		os.Exit(1)
	}
}

func run(storeDir, addr string, workers, maxQueued int, maxQueuedMB int64, maxAttempts int,
	deadline, drainGrace time.Duration, weightsFlag string, resilient bool, cacheMB int64) error {
	if storeDir == "" {
		return fmt.Errorf("missing -store")
	}
	weights, err := parseWeights(weightsFlag)
	if err != nil {
		return err
	}
	store, err := persona.NewLocalStore(storeDir)
	if err != nil {
		return err
	}
	if resilient {
		store = persona.NewRetryStore(store, persona.RetryPolicy{})
	}
	ref, err := loadReference(store)
	if err != nil {
		log.Printf("no reference in store (align jobs will be rejected): %v", err)
		ref = nil
	} else {
		log.Printf("reference loaded: %s", ref)
	}

	cacheBytes := cacheMB << 20
	if cacheMB <= 0 {
		cacheBytes = -1 // disabled
	}
	sess := persona.NewSession(store, persona.SessionOptions{CacheBytes: cacheBytes})
	defer sess.Close()
	mgr, err := jobs.NewManager(jobs.Config{
		Store:           store,
		Session:         sess,
		Reference:       ref,
		Workers:         workers,
		MaxQueued:       maxQueued,
		MaxQueuedBytes:  maxQueuedMB << 20,
		MaxAttempts:     maxAttempts,
		DefaultDeadline: deadline,
		TenantWeights:   weights,
	})
	if err != nil {
		return err
	}
	rep, err := mgr.Recover()
	if err != nil {
		return fmt.Errorf("journal recovery: %w", err)
	}
	log.Printf("journal replayed: clean=%v finished=%d interrupted=%d requeued=%d corrupt=%d",
		rep.CleanShutdown, rep.Finished, rep.Interrupted, rep.Requeued, rep.Corrupt)
	mgr.Start()

	srv := &http.Server{Addr: addr, Handler: mgr.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on http://%s (workers=%d, max-queued=%d)", addr, workers, maxQueued)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop admitting (submissions now 503), give in-flight
	// jobs the grace window, checkpoint whatever remains, then stop serving
	// status polls and mark the shutdown clean.
	log.Printf("signal received; draining (grace %s)", drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
