package persona_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"persona"
	"persona/internal/agd"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/genome"
	"persona/internal/reads"
)

// buildFASTQ simulates reads and renders them as FASTQ text.
func buildFASTQ(t *testing.T, g *genome.Genome, n, readLen int, dupFrac float64, seed int64) string {
	t.Helper()
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: seed, N: n, ReadLen: readLen, ErrorRate: 0.003, DuplicateFraction: dupFrac,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFullPipeline walks the complete paper workflow through the public
// API: import FASTQ → align → sort → mark duplicates → export SAM and BAM.
func TestFullPipeline(t *testing.T) {
	store := persona.NewMemStore()
	g, err := persona.SynthesizeGenome(150_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	fq := buildFASTQ(t, g, 800, 80, 0.15, 8)

	m, n, err := persona.ImportFASTQ(context.Background(), store, "patient", strings.NewReader(fq), persona.RefSeqs(g), 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 800 || len(m.Chunks) != 8 {
		t.Fatalf("imported %d records in %d chunks", n, len(m.Chunks))
	}

	idx, err := persona.BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	report, m, err := persona.Align(context.Background(), store, "patient", idx, persona.AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Reads != 800 {
		t.Fatalf("aligned %d reads", report.Reads)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("no results column")
	}

	sorted, err := persona.Sort(context.Background(), store, "patient", persona.ByLocation, "patient.sorted")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.SortedBy != "location" {
		t.Fatalf("SortedBy = %q", sorted.SortedBy)
	}

	dupStats, err := persona.MarkDuplicates(context.Background(), store, "patient.sorted")
	if err != nil {
		t.Fatal(err)
	}
	if dupStats.Reads != 800 {
		t.Fatalf("dup pass saw %d reads", dupStats.Reads)
	}
	if dupStats.Duplicates == 0 {
		t.Fatal("no duplicates found despite 15% duplication")
	}

	var samOut bytes.Buffer
	sn, err := persona.ExportSAM(context.Background(), store, "patient.sorted", &samOut)
	if err != nil {
		t.Fatal(err)
	}
	if sn != 800 {
		t.Fatalf("exported %d SAM records", sn)
	}
	sc := sam.NewScanner(&samOut)
	samRecs := 0
	dupFlagged := 0
	for sc.Scan() {
		samRecs++
		if sc.Record().Flags&agd.FlagDuplicate != 0 {
			dupFlagged++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if samRecs != 800 {
		t.Fatalf("SAM parse-back %d records", samRecs)
	}
	if uint64(dupFlagged) != dupStats.Duplicates {
		t.Fatalf("SAM carries %d dup flags, marking found %d", dupFlagged, dupStats.Duplicates)
	}

	var bamOut bytes.Buffer
	bn, err := persona.ExportBAM(context.Background(), store, "patient.sorted", &bamOut)
	if err != nil {
		t.Fatal(err)
	}
	if bn != 800 {
		t.Fatalf("exported %d BAM records", bn)
	}
	br, err := bam.NewReader(&bamOut)
	if err != nil {
		t.Fatal(err)
	}
	bamRecs := 0
	for br.Scan() {
		bamRecs++
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	if bamRecs != 800 {
		t.Fatalf("BAM parse-back %d records", bamRecs)
	}

	var fqOut bytes.Buffer
	fn, err := persona.ExportFASTQ(context.Background(), store, "patient", &fqOut)
	if err != nil {
		t.Fatal(err)
	}
	if fn != 800 {
		t.Fatalf("exported %d FASTQ records", fn)
	}
	if fqOut.String() != fq {
		t.Fatal("FASTQ round trip through AGD is not byte-identical")
	}
}

// TestDistributedMatchesSingleServer checks that the cluster runtime and
// the single-server pipeline produce identical results.
func TestDistributedMatchesSingleServer(t *testing.T) {
	g, err := persona.SynthesizeGenome(120_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := persona.BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	fq := buildFASTQ(t, g, 400, 70, 0, 18)

	runSingle := func() []agd.Result {
		store := persona.NewMemStore()
		if _, _, err := persona.ImportFASTQ(context.Background(), store, "ds", strings.NewReader(fq), persona.RefSeqs(g), 64); err != nil {
			t.Fatal(err)
		}
		if _, _, err := persona.Align(context.Background(), store, "ds", idx, persona.AlignOptions{}); err != nil {
			t.Fatal(err)
		}
		ds, err := persona.OpenDataset(store, "ds")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ds.ReadAllResults()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	runCluster := func() []agd.Result {
		store := persona.NewMemStore()
		if _, _, err := persona.ImportFASTQ(context.Background(), store, "ds", strings.NewReader(fq), persona.RefSeqs(g), 64); err != nil {
			t.Fatal(err)
		}
		report, _, err := persona.AlignDistributed(context.Background(), store, "ds", idx, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if report.Imbalance < 0 {
			t.Fatal("negative imbalance")
		}
		ds, err := persona.OpenDataset(store, "ds")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ds.ReadAllResults()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	single, distributed := runSingle(), runCluster()
	if len(single) != len(distributed) {
		t.Fatalf("counts differ: %d vs %d", len(single), len(distributed))
	}
	for i := range single {
		if single[i] != distributed[i] {
			t.Fatalf("result %d differs:\nsingle %+v\ncluster %+v", i, single[i], distributed[i])
		}
	}
}

// TestObjectStoreBackend runs the pipeline against the Ceph-like store.
func TestObjectStoreBackend(t *testing.T) {
	store, err := persona.NewObjectStore()
	if err != nil {
		t.Fatal(err)
	}
	g, err := persona.SynthesizeGenome(80_000, 27)
	if err != nil {
		t.Fatal(err)
	}
	fq := buildFASTQ(t, g, 200, 60, 0, 28)
	if _, _, err := persona.ImportFASTQ(context.Background(), store, "ds", strings.NewReader(fq), persona.RefSeqs(g), 64); err != nil {
		t.Fatal(err)
	}
	idx, err := persona.BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := persona.Align(context.Background(), store, "ds", idx, persona.AlignOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := persona.Sort(context.Background(), store, "ds", persona.ByLocation, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := persona.MarkDuplicates(context.Background(), store, "ds.sorted"); err != nil {
		t.Fatal(err)
	}
}
