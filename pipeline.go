package persona

import (
	"context"
	"fmt"
	"io"
	"time"

	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/align/snap"
	"persona/internal/core"
	"persona/internal/filter"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/markdup"
)

// A Pipeline is a validated, composable stage graph over a Session: one
// source (Read or ImportFASTQ), any number of transform stages (Align,
// Sort, MarkDuplicates, Filter), and one sink (Export* or Write). Run plans
// the graph and streams AGD chunks stage-to-stage over the session's shared
// executor: adjacent streaming-capable stages are fused, so chunks flow in
// memory and no intermediate dataset is written to the store. Stages with a
// global barrier — sort's merge — spill their runs to temporary blobs as
// the external sort always has, then feed the next stage from the merge's
// output stream.
//
// Builder methods record the graph and defer all validation and errors to
// Run, so construction chains fluently:
//
//	report, err := sess.Read("patient").
//		Align(idx, persona.AlignOptions{}).
//		Sort(persona.ByLocation).
//		MarkDuplicates().
//		ExportSAM(w).
//		Run(ctx)
type Pipeline struct {
	sess   *Session
	stages []pipeStage
}

type stageKind int

const (
	stageRead stageKind = iota
	stageImportFASTQ
	stageAlign
	stageSort
	stageMarkDup
	stageFilter
	stageExportSAM
	stageExportBAM
	stageExportFASTQ
	stageWrite
)

func (k stageKind) String() string {
	switch k {
	case stageRead:
		return "read"
	case stageImportFASTQ:
		return "import-fastq"
	case stageAlign:
		return "align"
	case stageSort:
		return "sort"
	case stageMarkDup:
		return "markdup"
	case stageFilter:
		return "filter"
	case stageExportSAM:
		return "export-sam"
	case stageExportBAM:
		return "export-bam"
	case stageExportFASTQ:
		return "export-fastq"
	case stageWrite:
		return "write"
	}
	return "stage"
}

func (k stageKind) isSink() bool { return k >= stageExportSAM }

// pipeStage is one recorded stage and its parameters.
type pipeStage struct {
	kind      stageKind
	dataset   string          // stageRead, stageWrite
	src       io.Reader       // stageImportFASTQ
	refs      []agd.RefSeq    // stageImportFASTQ
	chunkSize int             // stageImportFASTQ
	idx       *Index          // stageAlign
	alignOpts AlignOptions    // stageAlign
	by        SortKey         // stageSort
	pred      FilterPredicate // stageFilter
	dst       io.Writer       // stageExport*
}

// Read starts a pipeline over an existing AGD dataset in the session's
// store, streaming every manifest column.
func (s *Session) Read(dataset string) *Pipeline {
	return &Pipeline{sess: s, stages: []pipeStage{{kind: stageRead, dataset: dataset}}}
}

// ImportFASTQ starts a pipeline over a FASTQ stream: reads are parsed into
// AGD chunks of chunkSize records (0 for the default) that feed the next
// stage in memory. refs, if known, travels in the stream metadata (and into
// the manifest, if the pipeline ends in Write).
func (s *Session) ImportFASTQ(src io.Reader, refs []agd.RefSeq, chunkSize int) *Pipeline {
	return &Pipeline{sess: s, stages: []pipeStage{{kind: stageImportFASTQ, src: src, refs: refs, chunkSize: chunkSize}}}
}

func (p *Pipeline) add(st pipeStage) *Pipeline {
	p.stages = append(p.stages, st)
	return p
}

// Align appends a results column, aligning every read against idx on the
// session's executor. Within AlignOptions, ExecutorThreads and Prefetch are
// session-owned here and ignored.
func (p *Pipeline) Align(idx *Index, opts AlignOptions) *Pipeline {
	return p.add(pipeStage{kind: stageAlign, idx: idx, alignOpts: opts})
}

// Sort reorders the stream by the given key (a global barrier: the stage
// spills sorted runs to temporary blobs, then streams their merge).
func (p *Pipeline) Sort(by SortKey) *Pipeline {
	return p.add(pipeStage{kind: stageSort, by: by})
}

// MarkDuplicates flags duplicate reads in the stream's results column.
func (p *Pipeline) MarkDuplicates() *Pipeline {
	return p.add(pipeStage{kind: stageMarkDup})
}

// Filter keeps only the rows matching pred.
func (p *Pipeline) Filter(pred FilterPredicate) *Pipeline {
	return p.add(pipeStage{kind: stageFilter, pred: pred})
}

// ExportSAM ends the pipeline by rendering the stream as SAM text into dst.
func (p *Pipeline) ExportSAM(dst io.Writer) *Pipeline {
	return p.add(pipeStage{kind: stageExportSAM, dst: dst})
}

// ExportBAM ends the pipeline by rendering the stream as BAM into dst.
func (p *Pipeline) ExportBAM(dst io.Writer) *Pipeline {
	return p.add(pipeStage{kind: stageExportBAM, dst: dst})
}

// ExportFASTQ ends the pipeline by rendering the stream's reads as FASTQ.
func (p *Pipeline) ExportFASTQ(dst io.Writer) *Pipeline {
	return p.add(pipeStage{kind: stageExportFASTQ, dst: dst})
}

// Write ends the pipeline by materializing the stream as a new AGD dataset.
func (p *Pipeline) Write(dataset string) *Pipeline {
	return p.add(pipeStage{kind: stageWrite, dataset: dataset})
}

// StageReport describes one stage of a completed run.
type StageReport struct {
	// Stage names the stage ("read", "align", "sort", ...).
	Stage string
	// Records is how many records the stage delivered downstream (for
	// sinks: consumed).
	Records uint64
	// Groups is how many chunk-granularity row groups that took.
	Groups int64
	// Elapsed is the wall time attributable to this stage alone (upstream
	// time excluded).
	Elapsed time.Duration
}

// ExecutorStats is the session executor's activity during one run.
type ExecutorStats struct {
	// Submitted and Completed count fine-grain tasks.
	Submitted, Completed int64
	// Steals counts tasks run by a shard other than the one they were
	// submitted to — the work-stealing load-balance share.
	Steals int64
	// Busy is cumulative worker time inside tasks.
	Busy time.Duration
}

// PipelineReport aggregates a completed pipeline run.
type PipelineReport struct {
	// Stages reports each stage in graph order.
	Stages []StageReport
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
	// Records is what the sink consumed (records exported or written).
	Records uint64
	// Manifest is the output dataset's manifest (Write sink only).
	Manifest *Manifest
	// Align carries the alignment stage's report, when the pipeline aligned.
	Align *AlignReport
	// Dups carries duplicate-marking statistics, when the pipeline marked.
	Dups DupStats
	// Filtered carries filter statistics, when the pipeline filtered.
	Filtered FilterStats
	// Executor is the session executor's activity attributable to this run.
	// Concurrent pipelines on one session share the executor, so their
	// deltas overlap.
	Executor ExecutorStats
	// Storage carries the resilient store's retry/hedge activity during this
	// run, when the session's store is wrapped with NewRetryStore (nil
	// otherwise). Concurrent pipelines share the store, so deltas overlap.
	Storage *StorageStats
}

// validate checks the stage graph shape and column flow before anything
// runs: exactly one source (guaranteed by construction), transforms in the
// middle, exactly one sink at the end, and every stage's required columns
// present — alignment appends the results column, everything downstream of
// it that needs results finds it.
func (p *Pipeline) validate(sourceCols []string, hasResults bool) error {
	if len(p.stages) < 2 {
		return fmt.Errorf("persona: pipeline has no sink (end with Export* or Write)")
	}
	has := func(col string) bool {
		for _, c := range sourceCols {
			if c == col {
				return true
			}
		}
		return false
	}
	readCols := has(agd.ColBases) && has(agd.ColQual) && has(agd.ColMetadata)
	for i, st := range p.stages[1:] {
		last := i == len(p.stages)-2
		if st.kind.isSink() != last {
			if st.kind.isSink() {
				return fmt.Errorf("persona: %s must be the final stage", st.kind)
			}
			return fmt.Errorf("persona: pipeline must end in a sink, not %s", st.kind)
		}
		switch st.kind {
		case stageAlign:
			if st.idx == nil {
				return fmt.Errorf("persona: Align needs an index")
			}
			if !has(agd.ColBases) {
				return fmt.Errorf("persona: Align needs a %q column", agd.ColBases)
			}
			if hasResults {
				return fmt.Errorf("persona: stream is already aligned")
			}
			hasResults = true
		case stageSort:
			if st.by == ByLocation && !hasResults {
				return fmt.Errorf("persona: Sort(ByLocation) needs alignment results (Align first, or Read an aligned dataset)")
			}
			if st.by == ByMetadata && !has(agd.ColMetadata) {
				return fmt.Errorf("persona: Sort(ByMetadata) needs a %q column", agd.ColMetadata)
			}
		case stageMarkDup, stageFilter:
			if !hasResults {
				return fmt.Errorf("persona: %s needs alignment results", st.kind)
			}
			if st.kind == stageFilter && st.pred == nil {
				return fmt.Errorf("persona: Filter needs a predicate")
			}
		case stageExportSAM, stageExportBAM:
			if !hasResults || !readCols {
				return fmt.Errorf("persona: %s needs the read columns and alignment results", st.kind)
			}
		case stageExportFASTQ:
			if !readCols {
				return fmt.Errorf("persona: export-fastq needs the read columns")
			}
		case stageWrite:
			if st.dataset == "" {
				return fmt.Errorf("persona: Write needs a dataset name")
			}
		}
	}
	return nil
}

// edgeStats instruments one pipeline edge: cumulative time spent inside the
// stage's Next (including its upstream pulls) and what flowed through.
type edgeStats struct {
	nanos   int64
	setup   int64 // stage construction time (sort's eager spill phase)
	groups  int64
	records uint64
}

// instrumented wraps a stream so deliveries are counted and timed.
func instrumented(s *agd.GroupStream, e *edgeStats) *agd.GroupStream {
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		t0 := time.Now()
		g, err := s.Next(ctx)
		e.nanos += time.Since(t0).Nanoseconds()
		if g != nil {
			e.groups++
			e.records += uint64(g.NumRecords())
		}
		return g, err
	}
	return agd.NewGroupStream(s.Meta, next, s.Close)
}

// Run plans, validates and executes the pipeline, returning the aggregated
// report. Cancellation and deadline of ctx are checked per chunk at every
// stage.
func (p *Pipeline) Run(ctx context.Context) (*PipelineReport, error) {
	sess := p.sess
	report := &PipelineReport{}
	start := time.Now()
	execSub0, execDone0, execBusy0 := sess.exec.Stats()
	steals0 := sess.exec.Steals()
	storage0, resilient := sess.ResilienceStats()

	// Source.
	src := p.stages[0]
	var (
		stream     *agd.GroupStream
		err        error
		hasResults bool
	)
	switch src.kind {
	case stageRead:
		ds, oerr := agd.Open(sess.store, src.dataset)
		if oerr != nil {
			return nil, oerr
		}
		hasResults = ds.Manifest.HasColumn(agd.ColResults)
		if err := p.validate(ds.Manifest.Columns, hasResults); err != nil {
			return nil, err
		}
		stream, err = ds.Groups(agd.StreamOptions{
			Prefetch:    sess.prefetch,
			ShardedPool: sess.chunkPool,
			Codec:       agd.Codec{Exec: sess.exec},
		})
		if err != nil {
			return nil, err
		}
	case stageImportFASTQ:
		if err := p.validate([]string{agd.ColBases, agd.ColQual, agd.ColMetadata}, false); err != nil {
			return nil, err
		}
		stream = fastq.ImportStream(src.src, fastq.ImportOptions{ChunkSize: src.chunkSize, RefSeqs: src.refs})
	default:
		return nil, fmt.Errorf("persona: pipeline has no source")
	}

	// Transform stages, each instrumented so per-stage time can be told
	// apart afterwards. Closing the final stream tears the whole chain down
	// (every stage's stop hook closes its upstream).
	edges := make([]*edgeStats, 0, len(p.stages))
	wire := func(s *agd.GroupStream) *agd.GroupStream {
		e := &edgeStats{}
		edges = append(edges, e)
		return instrumented(s, e)
	}
	stream = wire(stream)
	defer func() { stream.Close() }()

	var (
		dups   *DupStats
		fstats *FilterStats
	)
	for _, st := range p.stages[1 : len(p.stages)-1] {
		var (
			out        *agd.GroupStream
			setupNanos int64
		)
		switch st.kind {
		case stageAlign:
			var alignReport *core.AlignReport
			out, alignReport, err = core.AlignStream(core.AlignConfig{
				Index:   st.idx,
				Aligner: snap.Config{MaxDist: st.alignOpts.MaxDist},
			}, sess.exec, stream)
			report.Align = alignReport
		case stageSort:
			setup := time.Now()
			out, err = agdsort.SortStream(ctx, sess.store, stream, agdsort.Options{
				By:         st.by,
				TempPrefix: sess.tempPrefix(),
			})
			setupNanos = time.Since(setup).Nanoseconds()
		case stageMarkDup:
			out, dups, err = markdup.MarkStream(stream)
		case stageFilter:
			out, fstats, err = filter.RunStream(stream, st.pred)
		}
		if err != nil {
			// The deferred Close tears down the upstream chain built so far.
			return nil, err
		}
		stream = wire(out)
		// A barrier stage's eager phase (sort's staging + spill) runs at
		// construction, before any Next: charge it to this stage's edge.
		edges[len(edges)-1].setup = setupNanos
	}

	// Sink.
	sink := p.stages[len(p.stages)-1]
	var n uint64
	switch sink.kind {
	case stageExportSAM:
		n, err = sam.ExportStream(ctx, stream, sink.dst)
	case stageExportBAM:
		n, err = bam.ExportStream(ctx, stream, sink.dst)
	case stageExportFASTQ:
		n, err = fastq.ExportStream(ctx, stream, sink.dst)
	case stageWrite:
		var m *agd.Manifest
		m, err = agd.WriteGroups(ctx, stream, sess.store, sink.dataset, agd.WriterOptions{})
		if m != nil {
			report.Manifest = m
			n = m.NumRecords()
		}
	}
	if err != nil {
		return nil, err
	}
	stream.Close() // finalize stage reports (align stats, spill cleanup)
	report.Records = n
	report.Elapsed = time.Since(start)
	if dups != nil {
		report.Dups = *dups
	}
	if fstats != nil {
		report.Filtered = *fstats
	}

	// Per-stage attribution: every edge's cumulative Next time includes its
	// upstream pulls (the pipeline is pull-based), so a stage's own time is
	// its edge (plus its eager setup phase, for barriers) minus the
	// upstream edge — the upstream's time is spent entirely inside this
	// stage's pulls or setup. The sink gets the run's remainder: total
	// minus the last edge and every setup phase.
	names := make([]string, 0, len(p.stages))
	for _, st := range p.stages {
		name := st.kind.String()
		if st.kind == stageSort {
			name = "sort-" + st.by.String()
		}
		names = append(names, name)
	}
	var prev, setups int64
	for i, e := range edges {
		report.Stages = append(report.Stages, StageReport{
			Stage:   names[i],
			Records: e.records,
			Groups:  e.groups,
			Elapsed: time.Duration(e.nanos + e.setup - prev),
		})
		prev = e.nanos
		setups += e.setup
	}
	report.Stages = append(report.Stages, StageReport{
		Stage:   names[len(names)-1],
		Records: n,
		Elapsed: report.Elapsed - time.Duration(prev+setups),
	})

	execSub1, execDone1, execBusy1 := sess.exec.Stats()
	report.Executor = ExecutorStats{
		Submitted: execSub1 - execSub0,
		Completed: execDone1 - execDone0,
		Steals:    sess.exec.Steals() - steals0,
		Busy:      time.Duration(execBusy1 - execBusy0),
	}
	if resilient {
		storage1, _ := sess.ResilienceStats()
		delta := storage1.Delta(storage0)
		report.Storage = &delta
	}
	return report, nil
}
