package persona

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/align/snap"
	"persona/internal/cluster"
	"persona/internal/core"
	"persona/internal/dataflow"
	"persona/internal/filter"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/markdup"
)

// A Pipeline is a validated, composable stage graph over a Session: one
// source (Read or ImportFASTQ), any number of transform stages (Align,
// Sort, MarkDuplicates, Filter), and one sink (Export* or Write). Run plans
// the graph and streams AGD chunks stage-to-stage over the session's shared
// executor: adjacent streaming-capable stages are fused, so chunks flow in
// memory and no intermediate dataset is written to the store. Stages with a
// global barrier — sort's merge — spill their runs to temporary blobs as
// the external sort always has, then feed the next stage from the merge's
// output stream.
//
// Builder methods record the graph and defer all validation and errors to
// Run, so construction chains fluently:
//
//	report, err := sess.Read("patient").
//		Align(idx, persona.AlignOptions{}).
//		Sort(persona.ByLocation).
//		MarkDuplicates().
//		ExportSAM(w).
//		Run(ctx)
//
// Run is pumped by default: every stage is driven by its own pump goroutine
// and adjacent stages are connected by bounded queues (depth EdgeDepth,
// default DefaultEdgeDepth), so stage N+1 consumes chunk k−1 while stage N
// produces chunk k. Serial() opts back into the strictly sequential pull
// path; output bytes are identical either way.
type Pipeline struct {
	sess       *Session
	stages     []pipeStage
	serial     bool
	edgeDepth  int
	tempPrefix string
	tmpSeq     atomic.Uint64
	progress   *Progress
	nodes      int                   // >= 1: run distributed (see Distributed)
	distTune   func(*cluster.Config) // test hook: adjust the cluster config
}

// DefaultEdgeDepth is the default bounded-queue depth, in row groups, of
// each pumped pipeline edge. Total groups in flight across a run stay under
// the sum of its edge depths plus one in hand per stage.
const DefaultEdgeDepth = 4

type stageKind int

const (
	stageRead stageKind = iota
	stageImportFASTQ
	stageAlign
	stageSort
	stageMarkDup
	stageFilter
	stageExportSAM
	stageExportBAM
	stageExportFASTQ
	stageWrite
)

func (k stageKind) String() string {
	switch k {
	case stageRead:
		return "read"
	case stageImportFASTQ:
		return "import-fastq"
	case stageAlign:
		return "align"
	case stageSort:
		return "sort"
	case stageMarkDup:
		return "markdup"
	case stageFilter:
		return "filter"
	case stageExportSAM:
		return "export-sam"
	case stageExportBAM:
		return "export-bam"
	case stageExportFASTQ:
		return "export-fastq"
	case stageWrite:
		return "write"
	}
	return "stage"
}

func (k stageKind) isSink() bool { return k >= stageExportSAM }

// pipeStage is one recorded stage and its parameters.
type pipeStage struct {
	kind      stageKind
	dataset   string          // stageRead, stageWrite
	src       io.Reader       // stageImportFASTQ
	refs      []agd.RefSeq    // stageImportFASTQ
	chunkSize int             // stageImportFASTQ
	idx       *Index          // stageAlign
	alignOpts AlignOptions    // stageAlign
	by        SortKey         // stageSort
	pred      FilterPredicate // stageFilter
	dst       io.Writer       // stageExport*
}

// Read starts a pipeline over an existing AGD dataset in the session's
// store, streaming every manifest column.
func (s *Session) Read(dataset string) *Pipeline {
	return &Pipeline{sess: s, stages: []pipeStage{{kind: stageRead, dataset: dataset}}}
}

// ImportFASTQ starts a pipeline over a FASTQ stream: reads are parsed into
// AGD chunks of chunkSize records (0 for the default) that feed the next
// stage in memory. refs, if known, travels in the stream metadata (and into
// the manifest, if the pipeline ends in Write).
func (s *Session) ImportFASTQ(src io.Reader, refs []agd.RefSeq, chunkSize int) *Pipeline {
	return &Pipeline{sess: s, stages: []pipeStage{{kind: stageImportFASTQ, src: src, refs: refs, chunkSize: chunkSize}}}
}

func (p *Pipeline) add(st pipeStage) *Pipeline {
	p.stages = append(p.stages, st)
	return p
}

// Align appends a results column, aligning every read against idx on the
// session's executor. Within AlignOptions, ExecutorThreads and Prefetch are
// session-owned here and ignored.
func (p *Pipeline) Align(idx *Index, opts AlignOptions) *Pipeline {
	return p.add(pipeStage{kind: stageAlign, idx: idx, alignOpts: opts})
}

// Sort reorders the stream by the given key (a global barrier: the stage
// spills sorted runs to temporary blobs, then streams their merge).
func (p *Pipeline) Sort(by SortKey) *Pipeline {
	return p.add(pipeStage{kind: stageSort, by: by})
}

// MarkDuplicates flags duplicate reads in the stream's results column.
func (p *Pipeline) MarkDuplicates() *Pipeline {
	return p.add(pipeStage{kind: stageMarkDup})
}

// Filter keeps only the rows matching pred.
func (p *Pipeline) Filter(pred FilterPredicate) *Pipeline {
	return p.add(pipeStage{kind: stageFilter, pred: pred})
}

// ExportSAM ends the pipeline by rendering the stream as SAM text into dst.
func (p *Pipeline) ExportSAM(dst io.Writer) *Pipeline {
	return p.add(pipeStage{kind: stageExportSAM, dst: dst})
}

// ExportBAM ends the pipeline by rendering the stream as BAM into dst.
func (p *Pipeline) ExportBAM(dst io.Writer) *Pipeline {
	return p.add(pipeStage{kind: stageExportBAM, dst: dst})
}

// ExportFASTQ ends the pipeline by rendering the stream's reads as FASTQ.
func (p *Pipeline) ExportFASTQ(dst io.Writer) *Pipeline {
	return p.add(pipeStage{kind: stageExportFASTQ, dst: dst})
}

// Write ends the pipeline by materializing the stream as a new AGD dataset.
func (p *Pipeline) Write(dataset string) *Pipeline {
	return p.add(pipeStage{kind: stageWrite, dataset: dataset})
}

// Serial opts out of the pumped scheduler: stages advance one row group at
// a time on the caller's goroutine, as PR-5 pipelines did. Output bytes are
// identical to the pumped path; only scheduling differs.
func (p *Pipeline) Serial() *Pipeline {
	p.serial = true
	return p
}

// EdgeDepth sets the bounded-queue depth (in row groups) of every pumped
// edge; values < 1 select DefaultEdgeDepth. Deeper edges absorb burstier
// stages at the cost of more groups in flight.
func (p *Pipeline) EdgeDepth(depth int) *Pipeline {
	p.edgeDepth = depth
	return p
}

// TempPrefix overrides the session-assigned prefix barrier stages (sort)
// spill temporary blobs under. A job-oriented caller sets a job-unique
// prefix so every blob a run writes — spills included — lives under one
// sweepable namespace, making a crashed run safe to re-run after deleting
// the prefix. Empty (the default) keeps the session's ".pipeline/<n>/tmp"
// scheme. When a pipeline has several barrier stages, each gets a distinct
// subprefix under the given one.
func (p *Pipeline) TempPrefix(prefix string) *Pipeline {
	p.tempPrefix = prefix
	return p
}

// Observe attaches a live progress view to the next Run: per-stage record
// and group counters updated as chunks flow, readable concurrently via
// prog.Snapshot while the run is in flight.
func (p *Pipeline) Observe(prog *Progress) *Pipeline {
	p.progress = prog
	return p
}

// spillPrefix returns the temp-blob prefix for one barrier-stage build.
func (p *Pipeline) spillPrefix() string {
	if p.tempPrefix == "" {
		return p.sess.tempPrefix()
	}
	return fmt.Sprintf("%s/%d", p.tempPrefix, p.tmpSeq.Add(1))
}

// StageReport describes one stage of a completed run.
type StageReport struct {
	// Stage names the stage ("read", "align", "sort", ...).
	Stage string
	// Records is how many records the stage delivered downstream (for
	// sinks: consumed).
	Records uint64
	// Groups is how many chunk-granularity row groups that took.
	Groups int64
	// Elapsed is the wall time attributable to this stage alone (upstream
	// time excluded). On a pumped run it equals Busy: stages execute
	// concurrently, so per-stage times overlap and their sum exceeds the
	// run's wall — compare Busy against Blocked instead of against Elapsed
	// of other stages.
	Elapsed time.Duration
	// Busy is time the stage's pump spent doing the stage's own work —
	// producing groups (and, for barriers like sort, the eager spill
	// phase), excluding time blocked on its neighboring edges.
	Busy time.Duration
	// Blocked is time the stage's pump spent waiting on its edges: starved
	// for input (upstream slower) plus stalled pushing output (downstream
	// slower, back-pressure at edge depth). Zero on a serial run.
	Blocked time.Duration
	// PeakQueue is the deepest the stage's output queue got during a pumped
	// run (0 for the sink, which has no output edge, and on serial runs).
	PeakQueue int
}

// ExecutorStats is the session executor's activity during one run.
type ExecutorStats struct {
	// Submitted and Completed count fine-grain tasks.
	Submitted, Completed int64
	// Steals counts tasks run by a shard other than the one they were
	// submitted to — the work-stealing load-balance share.
	Steals int64
	// Busy is cumulative worker time inside tasks.
	Busy time.Duration
}

// PipelineReport aggregates a completed pipeline run.
type PipelineReport struct {
	// Stages reports each stage in graph order.
	Stages []StageReport
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
	// Records is what the sink consumed (records exported or written).
	Records uint64
	// Manifest is the output dataset's manifest (Write sink only).
	Manifest *Manifest
	// Align carries the alignment stage's report, when the pipeline aligned.
	Align *AlignReport
	// Dups carries duplicate-marking statistics, when the pipeline marked.
	Dups DupStats
	// Filtered carries filter statistics, when the pipeline filtered.
	Filtered FilterStats
	// Executor is the session executor's activity attributable to this run.
	// Concurrent pipelines on one session share the executor, so their
	// deltas overlap.
	Executor ExecutorStats
	// Storage carries the resilient store's retry/hedge activity during this
	// run, when the session's store is wrapped with NewRetryStore (nil
	// otherwise). Concurrent pipelines share the store, so deltas overlap.
	Storage *StorageStats
	// Cache carries the session chunk cache's activity during this run (nil
	// when the cache is disabled). Concurrent pipelines share the cache, so
	// deltas overlap.
	Cache *CacheStats
	// Spill carries the sort stage's spill-compression accounting, when the
	// pipeline sorted (nil otherwise).
	Spill *SpillReport
	// Pumped reports whether the run used the pumped scheduler; EdgeDepth
	// is the bounded-queue depth its edges ran with (0 when serial).
	Pumped    bool
	EdgeDepth int
	// Cluster carries the distributed run's cluster report (nil on
	// single-node runs). Its ShuffleBytes, Partitions and PartitionSkew
	// describe the cross-node range shuffle.
	Cluster *ClusterReport
}

// validate checks the stage graph shape and column flow before anything
// runs: exactly one source (guaranteed by construction), transforms in the
// middle, exactly one sink at the end, and every stage's required columns
// present — alignment appends the results column, everything downstream of
// it that needs results finds it.
func (p *Pipeline) validate(sourceCols []string, hasResults bool) error {
	if len(p.stages) < 2 {
		return fmt.Errorf("persona: pipeline has no sink (end with Export* or Write)")
	}
	has := func(col string) bool {
		for _, c := range sourceCols {
			if c == col {
				return true
			}
		}
		return false
	}
	readCols := has(agd.ColBases) && has(agd.ColQual) && has(agd.ColMetadata)
	for i, st := range p.stages[1:] {
		last := i == len(p.stages)-2
		if st.kind.isSink() != last {
			if st.kind.isSink() {
				return fmt.Errorf("persona: %s must be the final stage", st.kind)
			}
			return fmt.Errorf("persona: pipeline must end in a sink, not %s", st.kind)
		}
		switch st.kind {
		case stageAlign:
			if st.idx == nil {
				return fmt.Errorf("persona: Align needs an index")
			}
			if !has(agd.ColBases) {
				return fmt.Errorf("persona: Align needs a %q column", agd.ColBases)
			}
			if hasResults {
				return fmt.Errorf("persona: stream is already aligned")
			}
			hasResults = true
		case stageSort:
			if st.by == ByLocation && !hasResults {
				return fmt.Errorf("persona: Sort(ByLocation) needs alignment results (Align first, or Read an aligned dataset)")
			}
			if st.by == ByMetadata && !has(agd.ColMetadata) {
				return fmt.Errorf("persona: Sort(ByMetadata) needs a %q column", agd.ColMetadata)
			}
		case stageMarkDup, stageFilter:
			if !hasResults {
				return fmt.Errorf("persona: %s needs alignment results", st.kind)
			}
			if st.kind == stageFilter && st.pred == nil {
				return fmt.Errorf("persona: Filter needs a predicate")
			}
		case stageExportSAM, stageExportBAM:
			if !hasResults || !readCols {
				return fmt.Errorf("persona: %s needs the read columns and alignment results", st.kind)
			}
		case stageExportFASTQ:
			if !readCols {
				return fmt.Errorf("persona: export-fastq needs the read columns")
			}
		case stageWrite:
			if st.dataset == "" {
				return fmt.Errorf("persona: Write needs a dataset name")
			}
		}
	}
	return nil
}

// edgeStats instruments one pipeline edge: cumulative time spent inside the
// stage's Next (including its upstream pulls) and what flowed through.
type edgeStats struct {
	nanos   int64
	setup   int64 // stage construction time (sort's eager spill phase)
	groups  int64
	records uint64
}

// instrumented wraps a stream so deliveries are counted and timed. The
// wrapper preserves the delivery-ownership contract of the wrapped stream.
// slot, when non-nil, mirrors the counters into a live Progress view (the
// stats themselves stay unsynchronized — each is written by one goroutine
// and read only after the run's barrier).
func instrumented(s *agd.GroupStream, e *edgeStats, slot *progressSlot) *agd.GroupStream {
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		t0 := time.Now()
		g, err := s.Next(ctx)
		e.nanos += time.Since(t0).Nanoseconds()
		if g != nil {
			e.groups++
			e.records += uint64(g.NumRecords())
			if slot != nil {
				slot.groups.Add(1)
				slot.records.Add(uint64(g.NumRecords()))
			}
		}
		if err == io.EOF && slot != nil {
			slot.done.Store(true)
		}
		return g, err
	}
	out := agd.NewGroupStream(s.Meta, next, s.Close)
	out.Owned = s.Owned
	return out
}

// runBase carries the counters snapshotted at Run entry, diffed into the
// report on completion.
type runBase struct {
	start     time.Time
	sub0      int64
	done0     int64
	busy0     int64
	steals0   int64
	storage0  StorageStats
	resilient bool
	cache0    CacheStats
	cached    bool
}

func (p *Pipeline) snapshotBase() runBase {
	sess := p.sess
	b := runBase{start: time.Now()}
	b.sub0, b.done0, b.busy0 = sess.exec.Stats()
	b.steals0 = sess.exec.Steals()
	b.storage0, b.resilient = sess.ResilienceStats()
	b.cache0, b.cached = sess.CacheStats()
	return b
}

func (p *Pipeline) finishBase(report *PipelineReport, b runBase) {
	sess := p.sess
	report.Elapsed = time.Since(b.start)
	sub1, done1, busy1 := sess.exec.Stats()
	report.Executor = ExecutorStats{
		Submitted: sub1 - b.sub0,
		Completed: done1 - b.done0,
		Steals:    sess.exec.Steals() - b.steals0,
		Busy:      time.Duration(busy1 - b.busy0),
	}
	if b.resilient {
		storage1, _ := sess.ResilienceStats()
		delta := storage1.Delta(b.storage0)
		report.Storage = &delta
	}
	if b.cached {
		cache1, _ := sess.CacheStats()
		delta := cache1.Delta(b.cache0)
		report.Cache = &delta
	}
}

// stageNames returns the report label of every stage, in graph order.
func (p *Pipeline) stageNames() []string {
	names := make([]string, 0, len(p.stages))
	for _, st := range p.stages {
		name := st.kind.String()
		if st.kind == stageSort {
			name = "sort-" + st.by.String()
		}
		names = append(names, name)
	}
	return names
}

// openSource validates the graph and opens the source stream. pipelining
// and shards configure a pumped FASTQ source (0, 0 for the serial path).
func (p *Pipeline) openSource(pipelining, shards int) (*agd.GroupStream, error) {
	sess := p.sess
	src := p.stages[0]
	switch src.kind {
	case stageRead:
		ds, err := sess.openDataset(src.dataset)
		if err != nil {
			return nil, err
		}
		hasResults := ds.Manifest.HasColumn(agd.ColResults)
		if err := p.validate(ds.Manifest.Columns, hasResults); err != nil {
			return nil, err
		}
		return ds.Groups(agd.StreamOptions{
			Prefetch:    sess.prefetch,
			ShardedPool: sess.chunkPool,
			Cache:       sess.cache,
			Codec:       agd.Codec{Exec: sess.exec},
		})
	case stageImportFASTQ:
		if err := p.validate([]string{agd.ColBases, agd.ColQual, agd.ColMetadata}, false); err != nil {
			return nil, err
		}
		return fastq.ImportStream(src.src, fastq.ImportOptions{
			ChunkSize:  src.chunkSize,
			RefSeqs:    src.refs,
			Pipelining: pipelining,
			Shards:     shards,
		}), nil
	}
	return nil, fmt.Errorf("persona: pipeline has no source")
}

// buildStage constructs one transform stage over its input stream.
// pipelining sizes the stage's output builder pool (0 on the serial path).
// The stats the stage reports land in the shared report/dups/fstats slots —
// on the pumped path each slot is written by exactly one pump before the
// Wait barrier, so the post-Wait reads are ordered.
func (p *Pipeline) buildStage(ctx context.Context, st pipeStage, in *agd.GroupStream, pipelining int, report *PipelineReport, dups **DupStats, fstats **FilterStats) (*agd.GroupStream, error) {
	sess := p.sess
	switch st.kind {
	case stageAlign:
		out, alignReport, err := core.AlignStream(core.AlignConfig{
			Index:      st.idx,
			Aligner:    snap.Config{MaxDist: st.alignOpts.MaxDist},
			Pipelining: pipelining,
		}, sess.exec, in)
		report.Align = alignReport
		return out, err
	case stageSort:
		// Spill runs all complete inside SortStream (the sort's phase-1
		// barrier), so the stats are final when it returns — single-writer
		// before the pumped path's Wait, like report.Align above.
		spill := &agdsort.SpillStats{}
		out, err := agdsort.SortStream(ctx, sess.store, in, agdsort.Options{
			By:           st.by,
			TempPrefix:   p.spillPrefix(),
			Pipelining:   pipelining,
			SpillDecider: sess.spillDecider(),
			Spill:        spill,
		})
		rep := spill.Report()
		report.Spill = &rep
		return out, err
	case stageMarkDup:
		out, d, err := markdup.MarkStream(in, pipelining)
		*dups = d
		return out, err
	case stageFilter:
		out, f, err := filter.RunStream(in, st.pred, pipelining)
		*fstats = f
		return out, err
	}
	return nil, fmt.Errorf("persona: %s is not a transform stage", st.kind)
}

// runSink drains the final stream into the pipeline's sink, returning the
// records consumed.
func (p *Pipeline) runSink(ctx context.Context, stream *agd.GroupStream, report *PipelineReport) (uint64, error) {
	sess := p.sess
	sink := p.stages[len(p.stages)-1]
	switch sink.kind {
	case stageExportSAM:
		return sam.ExportStream(ctx, stream, sink.dst)
	case stageExportBAM:
		return bam.ExportStream(ctx, stream, sink.dst)
	case stageExportFASTQ:
		return fastq.ExportStream(ctx, stream, sink.dst)
	case stageWrite:
		// The write replaces whatever blobs the target dataset had: drop any
		// cached chunks/manifest for it, then remember the fresh manifest so
		// an immediately following read skips the open round trip.
		sess.invalidateDataset(sink.dataset)
		m, err := agd.WriteGroups(ctx, stream, sess.store, sink.dataset, agd.WriterOptions{})
		var n uint64
		if m != nil {
			report.Manifest = m
			n = m.NumRecords()
			if err == nil {
				sess.rememberManifest(sink.dataset, m)
			}
		}
		return n, err
	}
	return 0, fmt.Errorf("persona: pipeline has no sink")
}

// passthroughStage reports whether a stage's output groups keep their input
// group alive until Release (its output chunks alias upstream chunks).
// Pool windows must cover the whole passthrough span: a group produced
// above such a stage stays checked out across every edge the aliasing
// chain crosses.
func passthroughStage(k stageKind) bool {
	return k == stageAlign || k == stageMarkDup
}

// poolWindow sizes the builder pool of the stage at index i for a pumped
// run: one set being filled, plus (depth+1) per downstream edge — depth
// queued groups and one in the consumer's hand — across consecutive
// passthrough stages (which keep the producing stage's sets checked out
// beyond their own edge). An undersized window would block the producer
// (safe back-pressure, wasted overlap); this window never blocks.
func (p *Pipeline) poolWindow(i, depth int) int {
	w := 1
	for j := i; j < len(p.stages)-1; j++ {
		w += depth + 1
		if !passthroughStage(p.stages[j+1].kind) {
			break
		}
	}
	return w
}

// Run plans, validates and executes the pipeline, returning the aggregated
// report. Cancellation and deadline of ctx are checked per chunk at every
// stage. By default stages run pumped — each driven by its own goroutine
// over bounded queues (see Pipeline doc); Serial() pipelines advance one
// group at a time instead. Output bytes are identical either way.
func (p *Pipeline) Run(ctx context.Context) (*PipelineReport, error) {
	if len(p.stages) < 2 {
		return nil, fmt.Errorf("persona: pipeline has no sink (end with Export* or Write)")
	}
	if p.nodes >= 1 {
		return p.runDistributed(ctx)
	}
	if p.serial {
		return p.runSerial(ctx)
	}
	return p.runPumped(ctx)
}

// runSerial is the strictly sequential pull path: one goroutine advances
// the whole graph one row group at a time (PR-5 behavior).
func (p *Pipeline) runSerial(ctx context.Context) (*PipelineReport, error) {
	report := &PipelineReport{}
	base := p.snapshotBase()

	stream, err := p.openSource(0, 0)
	if err != nil {
		return nil, err
	}
	if p.progress != nil {
		p.progress.init(p.stageNames())
	}

	// Transform stages, each instrumented so per-stage time can be told
	// apart afterwards. Closing the final stream tears the whole chain down
	// (every stage's stop hook closes its upstream).
	edges := make([]*edgeStats, 0, len(p.stages))
	wire := func(s *agd.GroupStream) *agd.GroupStream {
		e := &edgeStats{}
		var slot *progressSlot
		if p.progress != nil {
			slot = p.progress.slot(len(edges))
		}
		edges = append(edges, e)
		return instrumented(s, e, slot)
	}
	stream = wire(stream)
	defer func() { stream.Close() }()

	var (
		dups   *DupStats
		fstats *FilterStats
	)
	for _, st := range p.stages[1 : len(p.stages)-1] {
		setup := time.Now()
		out, err := p.buildStage(ctx, st, stream, 0, report, &dups, &fstats)
		setupNanos := time.Since(setup).Nanoseconds()
		if err != nil {
			// The deferred Close tears down the upstream chain built so far.
			return nil, err
		}
		stream = wire(out)
		// A barrier stage's eager phase (sort's staging + spill) runs at
		// construction, before any Next: charge it to this stage's edge.
		if st.kind == stageSort {
			edges[len(edges)-1].setup = setupNanos
		}
	}

	n, err := p.runSink(ctx, stream, report)
	if err != nil {
		return nil, err
	}
	stream.Close() // finalize stage reports (align stats, spill cleanup)
	report.Records = n
	if dups != nil {
		report.Dups = *dups
	}
	if fstats != nil {
		report.Filtered = *fstats
	}
	if p.progress != nil {
		p.progress.finish(n, edges[len(edges)-1].groups)
	}
	p.finishBase(report, base)

	// Per-stage attribution: every edge's cumulative Next time includes its
	// upstream pulls (the pipeline is pull-based), so a stage's own time is
	// its edge (plus its eager setup phase, for barriers) minus the
	// upstream edge — the upstream's time is spent entirely inside this
	// stage's pulls or setup. The sink gets the run's remainder: total
	// minus the last edge and every setup phase.
	names := p.stageNames()
	var prev, setups int64
	for i, e := range edges {
		own := time.Duration(e.nanos + e.setup - prev)
		report.Stages = append(report.Stages, StageReport{
			Stage:   names[i],
			Records: e.records,
			Groups:  e.groups,
			Elapsed: own,
			Busy:    own,
		})
		prev = e.nanos
		setups += e.setup
	}
	sinkOwn := report.Elapsed - time.Duration(prev+setups)
	report.Stages = append(report.Stages, StageReport{
		Stage:   names[len(names)-1],
		Records: n,
		Elapsed: sinkOwn,
		Busy:    sinkOwn,
	})
	return report, nil
}

// progSlot returns stage i's live progress slot, nil when unobserved.
func (p *Pipeline) progSlot(i int) *progressSlot {
	if p.progress == nil {
		return nil
	}
	return p.progress.slot(i)
}

// metaMsg hands a constructed stage's output metadata (or its construction
// failure) to the downstream pump, which needs it to build its edge facade.
type metaMsg struct {
	meta agd.StreamMeta
	err  error
}

// runPumped drives every stage as a pump goroutine connected by bounded
// edges: stage N+1 consumes chunk k−1 while stage N produces chunk k.
// Memory stays bounded (groups in flight ≤ Σ edge depths + one in hand per
// stage, enforced by edge depth and the stages' builder-pool windows), and
// teardown cascades both ways — a failing stage closes its output edge
// (downstream sees the error) and its input stream (upstream pumps stop,
// queued groups drain back to their pools).
func (p *Pipeline) runPumped(ctx context.Context) (*PipelineReport, error) {
	sess := p.sess
	depth := p.edgeDepth
	if depth < 1 {
		depth = DefaultEdgeDepth
	}
	report := &PipelineReport{Pumped: true, EdgeDepth: depth}
	base := p.snapshotBase()
	names := p.stageNames()
	nStages := len(p.stages)
	nEdges := nStages - 1

	source, err := p.openSource(p.poolWindow(0, depth), sess.exec.NumShards())
	if err != nil {
		return nil, err
	}
	if p.progress != nil {
		p.progress.init(names)
	}

	bedges := make([]*agd.BoundedEdge, nEdges)
	metaCh := make([]chan metaMsg, nEdges)
	for i := range bedges {
		bedges[i] = agd.NewBoundedEdge(depth)
		metaCh[i] = make(chan metaMsg, 1)
	}
	// One stats slot per producing stage; each is written only by its own
	// pump, and the pump Wait below orders the final reads.
	stats := make([]*edgeStats, nStages-1)
	for i := range stats {
		stats[i] = &edgeStats{}
	}
	setups := make([]int64, nStages-1)
	dupSlots := make([]*DupStats, nStages)
	fstatSlots := make([]*FilterStats, nStages)

	pumps := dataflow.NewPumps(ctx)
	// Edge waits are condition variables and cannot select on a context: a
	// watcher fails every edge when the pump context dies (parent
	// cancellation or first pump failure), releasing queued groups and
	// waking both sides of every edge.
	stopWatch := context.AfterFunc(pumps.Context(), func() {
		cause := context.Cause(pumps.Context())
		if cause == nil {
			cause = context.Canceled
		}
		for _, e := range bedges {
			e.Fail(cause)
		}
	})
	defer stopWatch()

	// Source pump.
	pumps.Go(dataflow.Pump{Name: names[0], Home: sess.exec.NextShard()}, func(pctx context.Context) error {
		_, err := agd.RunPump(pctx, instrumented(source, stats[0], p.progSlot(0)), bedges[0])
		return err
	})
	metaCh[0] <- metaMsg{meta: source.Meta}

	// Transform pumps. Each waits for its upstream stage's metadata (sort
	// sends late: its eager spill phase runs at construction), builds the
	// stage over the input edge's stream facade, announces its own output
	// metadata and pumps until EOF or failure.
	for i := 1; i < nStages-1; i++ {
		st := p.stages[i]
		window := p.poolWindow(i, depth)
		pumps.Go(dataflow.Pump{Name: names[i], Home: sess.exec.NextShard()}, func(pctx context.Context) error {
			var m metaMsg
			select {
			case m = <-metaCh[i-1]:
			case <-pctx.Done():
				m = metaMsg{err: pctx.Err()}
			}
			if m.err != nil {
				// Upstream never came up; forward the failure (it is
				// already recorded where it happened) and unwind.
				metaCh[i] <- m
				bedges[i].CloseSend(m.err)
				bedges[i-1].CloseRecv()
				return nil
			}
			in := bedges[i-1].Stream(m.meta)
			setup := time.Now()
			var d *DupStats
			var f *FilterStats
			out, err := p.buildStage(pctx, st, in, window, report, &d, &f)
			if st.kind == stageSort {
				setups[i] = time.Since(setup).Nanoseconds()
			}
			dupSlots[i], fstatSlots[i] = d, f
			if err != nil {
				metaCh[i] <- metaMsg{err: err}
				bedges[i].CloseSend(err)
				in.Close()
				return err
			}
			metaCh[i] <- metaMsg{meta: out.Meta}
			_, perr := agd.RunPump(pctx, instrumented(out, stats[i], p.progSlot(i)), bedges[i])
			return perr
		})
	}

	// Sink, on the caller's goroutine.
	var m metaMsg
	select {
	case m = <-metaCh[nEdges-1]:
	case <-pumps.Context().Done():
		m = metaMsg{err: context.Cause(pumps.Context())}
	}
	var n uint64
	var sinkWall time.Duration
	var sinkErr error
	if m.err == nil {
		facade := bedges[nEdges-1].Stream(m.meta)
		t0 := time.Now()
		n, sinkErr = p.runSink(ctx, facade, report)
		sinkWall = time.Since(t0)
		if sinkErr != nil {
			pumps.Fail(sinkErr)
		}
		facade.Close() // drains the edge if the sink stopped early
	}
	perr := pumps.Wait()
	if perr == nil {
		perr = sinkErr
	}
	if perr == nil {
		perr = m.err
	}
	if perr != nil {
		return nil, perr
	}

	report.Records = n
	for _, d := range dupSlots {
		if d != nil {
			report.Dups = *d
		}
	}
	for _, f := range fstatSlots {
		if f != nil {
			report.Filtered = *f
		}
	}
	if p.progress != nil {
		p.progress.finish(n, bedges[nEdges-1].Moved())
	}
	p.finishBase(report, base)

	// Per-stage attribution under overlap: a stage's Busy is the wall its
	// pump spent inside the stage's Next (plus sort's eager spill phase)
	// minus the time those pulls sat blocked on the upstream edge; Blocked
	// is that starvation plus back-pressure stalls pushing downstream.
	// Stages run concurrently, so Busy values overlap in wall time and do
	// not sum to Elapsed.
	for i := 0; i < nStages-1; i++ {
		e := stats[i]
		var popW time.Duration
		if i > 0 {
			popW = bedges[i-1].PopWait()
		}
		busy := time.Duration(e.nanos+setups[i]) - popW
		if busy < 0 {
			busy = 0
		}
		report.Stages = append(report.Stages, StageReport{
			Stage:     names[i],
			Records:   e.records,
			Groups:    e.groups,
			Elapsed:   busy,
			Busy:      busy,
			Blocked:   popW + bedges[i].PushWait(),
			PeakQueue: bedges[i].PeakDepth(),
		})
	}
	lastPop := bedges[nEdges-1].PopWait()
	busySink := sinkWall - lastPop
	if busySink < 0 {
		busySink = 0
	}
	report.Stages = append(report.Stages, StageReport{
		Stage:   names[nStages-1],
		Records: n,
		Groups:  bedges[nEdges-1].Moved(),
		Elapsed: busySink,
		Busy:    busySink,
		Blocked: lastPop,
	})
	return report, nil
}
