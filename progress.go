package persona

import (
	"sync/atomic"
)

// Progress is a live, concurrently readable view of a running pipeline:
// per-stage records and row groups delivered so far, updated as chunks flow.
// A long-lived service (cmd/persona-server) attaches one to each job's
// pipeline via Pipeline.Observe so status polls can report per-stage
// progress mid-run; the final authoritative numbers remain the
// PipelineReport returned by Run.
//
// A Progress may be observed by at most one Run at a time. Snapshot is safe
// to call from any goroutine while the run is in flight.
type Progress struct {
	slots atomic.Pointer[[]*progressSlot]
}

// progressSlot is one stage's live counters. Counters are atomics: the
// stage's pump writes them while any number of status polls read.
type progressSlot struct {
	stage   string
	records atomic.Uint64
	groups  atomic.Int64
	done    atomic.Bool
}

// StageProgress is one stage's live counters at snapshot time.
type StageProgress struct {
	// Stage names the stage ("read", "align", "sort-location", ...).
	Stage string `json:"stage"`
	// Records and Groups count what the stage has delivered downstream so
	// far (for the sink: consumed).
	Records uint64 `json:"records"`
	Groups  int64  `json:"groups"`
	// Done reports that the stage's stream reached EOF.
	Done bool `json:"done"`
}

// NewProgress returns an empty progress view; attach it with
// Pipeline.Observe. Before the observed Run starts, Snapshot returns nil.
func NewProgress() *Progress { return &Progress{} }

// init installs one slot per stage name at Run entry.
func (pr *Progress) init(names []string) {
	slots := make([]*progressSlot, len(names))
	for i, n := range names {
		slots[i] = &progressSlot{stage: n}
	}
	pr.slots.Store(&slots)
}

// slot returns stage i's live counters (nil when not initialized).
func (pr *Progress) slot(i int) *progressSlot {
	p := pr.slots.Load()
	if p == nil || i >= len(*p) {
		return nil
	}
	return (*p)[i]
}

// finish marks every stage done and pins the sink's final counts (the sink
// has no instrumented output edge of its own).
func (pr *Progress) finish(sinkRecords uint64, sinkGroups int64) {
	p := pr.slots.Load()
	if p == nil {
		return
	}
	slots := *p
	for _, s := range slots {
		s.done.Store(true)
	}
	if n := len(slots); n > 0 {
		slots[n-1].records.Store(sinkRecords)
		slots[n-1].groups.Store(sinkGroups)
	}
}

// Snapshot returns the current per-stage counters in graph order, nil before
// the observed run initializes them.
func (pr *Progress) Snapshot() []StageProgress {
	p := pr.slots.Load()
	if p == nil {
		return nil
	}
	out := make([]StageProgress, len(*p))
	for i, s := range *p {
		out[i] = StageProgress{
			Stage:   s.stage,
			Records: s.records.Load(),
			Groups:  s.groups.Load(),
			Done:    s.done.Load(),
		}
	}
	return out
}
