module persona

go 1.24
