package persona

// White-box pipeline tests: golden equivalence between the fused
// Session/Pipeline graph and the staged free-function sequence, the
// zero-intermediate-write guarantee, and cancellation/leak behavior.

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"persona/internal/agd"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
	"persona/internal/storage"
)

// countingStore wraps a Store, recording every Put name and counting Gets;
// onGet (if set) runs before each Get — the hook cancellation tests use to
// cancel mid-stream.
type countingStore struct {
	inner storage.Store
	mu    sync.Mutex
	puts  []string
	gets  atomic.Int64
	onGet atomic.Pointer[func(n int64)]
}

func (c *countingStore) Put(name string, data []byte) error {
	c.mu.Lock()
	c.puts = append(c.puts, name)
	c.mu.Unlock()
	return c.inner.Put(name, data)
}

func (c *countingStore) Get(name string) ([]byte, error) {
	n := c.gets.Add(1)
	if hook := c.onGet.Load(); hook != nil {
		(*hook)(n)
	}
	return c.inner.Get(name)
}

func (c *countingStore) Delete(name string) error { return c.inner.Delete(name) }
func (c *countingStore) List(prefix string) ([]string, error) {
	return c.inner.List(prefix)
}

func (c *countingStore) putNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string{}, c.puts...)
}

// pipelineFixture imports the same simulated reads into two datasets of one
// store and returns the store and the genome.
func pipelineFixture(t testing.TB, names ...string) (*countingStore, *Genome) {
	t.Helper()
	g, err := SynthesizeGenome(150_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 8, N: 800, ReadLen: 80, ErrorRate: 0.003, DuplicateFraction: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	store := &countingStore{inner: NewMemStore()}
	for _, name := range names {
		if _, _, err := ImportFASTQ(context.Background(), store, name, strings.NewReader(fq.String()), RefSeqs(g), 100); err != nil {
			t.Fatal(err)
		}
	}
	return store, g
}

// TestPipelineMatchesStagedSAM is the golden equivalence check: a fused
// Read→Align→Sort→MarkDup→ExportSAM pipeline must produce byte-identical
// SAM to the staged free-function sequence — and must write nothing to the
// store except sort's temporary spill blobs, which it must delete again.
func TestPipelineMatchesStagedSAM(t *testing.T) {
	ctx := context.Background()
	store, g := pipelineFixture(t, "staged", "fused")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}

	// Staged: align writes results chunks, sort writes a whole dataset,
	// markdup rewrites its results column, export re-reads everything.
	if _, _, err := Align(ctx, store, "staged", idx, AlignOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Sort(ctx, store, "staged", ByLocation, "staged.sorted"); err != nil {
		t.Fatal(err)
	}
	stagedDups, err := MarkDuplicates(ctx, store, "staged.sorted")
	if err != nil {
		t.Fatal(err)
	}
	var stagedSAM bytes.Buffer
	if _, err := ExportSAM(ctx, store, "staged.sorted", &stagedSAM); err != nil {
		t.Fatal(err)
	}

	// The staged SAM header names the dataset-independent fields only, so
	// the two paths' bytes are comparable directly.
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()
	before := len(store.putNames())
	var fusedSAM bytes.Buffer
	report, err := sess.Read("fused").
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&fusedSAM).
		Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(stagedSAM.Bytes(), fusedSAM.Bytes()) {
		t.Fatalf("fused SAM differs from staged SAM (%d vs %d bytes)", fusedSAM.Len(), stagedSAM.Len())
	}
	if report.Records != 800 {
		t.Fatalf("pipeline exported %d records", report.Records)
	}
	if report.Dups != stagedDups {
		t.Fatalf("pipeline dups %+v, staged %+v", report.Dups, stagedDups)
	}
	if report.Align == nil || report.Align.Reads != 800 {
		t.Fatalf("pipeline align report %+v", report.Align)
	}
	if len(report.Stages) != 5 {
		t.Fatalf("expected 5 stage reports, got %v", report.Stages)
	}

	// Zero intermediate datasets: every store write during the fused run
	// must be a sort spill blob under the pipeline temp prefix...
	writes := store.putNames()[before:]
	if len(writes) == 0 {
		t.Fatal("expected sort spill writes")
	}
	for _, name := range writes {
		if !strings.HasPrefix(name, ".pipeline/") || !strings.Contains(name, "/tmp/") {
			t.Fatalf("fused pipeline wrote non-spill blob %q", name)
		}
	}
	// ...and the spill blobs are deleted by the time Run returns.
	left, err := store.List(".pipeline/")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill blobs left behind: %v", left)
	}
	// The session pool got every chunk back.
	if size, free := sess.PoolStats(); size != free {
		t.Fatalf("chunk pool leak: %d of %d free", free, size)
	}
}

// TestPipelineWriteMatchesFreeFunctions checks the dataset-sink path: an
// ImportFASTQ→Write pipeline round-trips reads identically to the
// free-function import, and a Read→Filter→Write pipeline matches Filter.
func TestPipelineWriteMatchesFreeFunctions(t *testing.T) {
	ctx := context.Background()
	store, g := pipelineFixture(t, "seed")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Align(ctx, store, "seed", idx, AlignOptions{}); err != nil {
		t.Fatal(err)
	}

	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	// Filter both ways; the outputs must export identically.
	if _, _, err := Filter(ctx, store, "seed", FilterMinMapQ(20), "seed.filtered"); err != nil {
		t.Fatal(err)
	}
	report, err := sess.Read("seed").Filter(FilterMinMapQ(20)).Write("seed.pfiltered").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Manifest == nil || report.Manifest.Name != "seed.pfiltered" {
		t.Fatalf("write sink manifest %+v", report.Manifest)
	}
	if report.Filtered.Kept == 0 || report.Filtered.Kept != report.Records {
		t.Fatalf("filter stats %+v vs records %d", report.Filtered, report.Records)
	}
	// The written dataset keeps the SOURCE's chunking (100 records/chunk),
	// not the arbitrary kept-count of the first filtered group.
	if report.Filtered.Kept > 100 && report.Manifest.Chunks[0].Records != 100 {
		t.Fatalf("write sink chunked at %d records, want source's 100", report.Manifest.Chunks[0].Records)
	}
	var a, b bytes.Buffer
	if _, err := ExportSAM(ctx, store, "seed.filtered", &a); err != nil {
		t.Fatal(err)
	}
	if _, err := ExportSAM(ctx, store, "seed.pfiltered", &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("filtered pipeline dataset differs from free-function filter")
	}

	// Import through the pipeline source, then round-trip the reads.
	sim, _ := reads.NewSimulator(g, reads.SimConfig{Seed: 3, N: 120, ReadLen: 60})
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ImportFASTQ(strings.NewReader(fq.String()), RefSeqs(g), 50).Write("imp").Run(ctx); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := ExportFASTQ(ctx, store, "imp", &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != fq.String() {
		t.Fatal("pipeline import did not round-trip FASTQ")
	}
}

// TestPipelineValidation exercises the plan-time graph checks.
func TestPipelineValidation(t *testing.T) {
	ctx := context.Background()
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	cases := []struct {
		name string
		p    *Pipeline
		want string
	}{
		{"no sink", sess.Read("ds"), "no sink"},
		{"sink not last", sess.Read("ds").ExportSAM(&bytes.Buffer{}).MarkDuplicates().ExportSAM(&bytes.Buffer{}), "final stage"},
		{"sort unaligned", sess.Read("ds").Sort(ByLocation).ExportFASTQ(&bytes.Buffer{}), "needs alignment results"},
		{"markdup unaligned", sess.Read("ds").MarkDuplicates().ExportSAM(&bytes.Buffer{}), "needs alignment results"},
		{"filter no pred", sess.Read("ds").Align(idx, AlignOptions{}).Filter(nil).ExportSAM(&bytes.Buffer{}), "predicate"},
		{"align nil index", sess.Read("ds").Align(nil, AlignOptions{}).ExportSAM(&bytes.Buffer{}), "index"},
		{"write empty name", sess.Read("ds").Write(""), "dataset name"},
		{"export unaligned", sess.Read("ds").ExportSAM(&bytes.Buffer{}), "alignment results"},
	}
	for _, tc := range cases {
		if _, err := tc.p.Run(ctx); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Double alignment is caught once the dataset carries results.
	if _, _, err := Align(ctx, store, "ds", idx, AlignOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Read("ds").Align(idx, AlignOptions{}).ExportSAM(&bytes.Buffer{}).Run(ctx); err == nil || !strings.Contains(err.Error(), "already aligned") {
		t.Errorf("realign: got %v", err)
	}
}

// TestPipelineCancellationMidStream cancels a fused pipeline partway
// through its input and checks that Run fails promptly, that the sort spill
// blobs are cleaned up, that the session chunk pool gets every pooled chunk
// back (no pool-item leak), that no goroutines are left behind, and that
// the same session still completes the pipeline afterwards. Run under
// -race, this also shakes out unsynchronized teardown.
func TestPipelineCancellationMidStream(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()
	time.Sleep(10 * time.Millisecond) // let executor workers reach steady state
	goroutines := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	baseline := store.gets.Load()
	hook := func(n int64) {
		// The 8-chunk dataset fetches 3 columns per chunk: cancelling
		// after a handful of fetches lands mid-align.
		if n-baseline > 6 {
			cancel()
		}
	}
	store.onGet.Store(&hook)
	var out bytes.Buffer
	_, err = sess.Read("ds").
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&out).
		Run(ctx)
	store.onGet.Store(nil)
	cancel()
	if err == nil {
		t.Fatal("cancelled pipeline succeeded")
	}
	if err != context.Canceled && !strings.Contains(err.Error(), "stopped") && !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("unexpected cancellation error: %v", err)
	}

	// Pool items and goroutines drain back; allow brief settling for
	// in-flight async fetches whose results are dropped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		size, free := sess.PoolStats()
		ngo := runtime.NumGoroutine()
		if size == free && ngo <= goroutines {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after cancellation: pool %d/%d free, goroutines %d (was %d)",
				free, size, ngo, goroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if left, _ := store.List(".pipeline/"); len(left) != 0 {
		t.Fatalf("spill blobs left after cancellation: %v", left)
	}

	// The same session (same executor, same pools) still works.
	out.Reset()
	report, err := sess.Read("ds").
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&out).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Records != 800 {
		t.Fatalf("post-cancel run exported %d records", report.Records)
	}
	if size, free := sess.PoolStats(); size != free {
		t.Fatalf("chunk pool leak after rerun: %d of %d free", free, size)
	}
}

// TestFreeFunctionCancellation checks the satellite ctx plumbing: the
// one-shot free functions notice an already-cancelled context within a
// chunk, and Align notices one that dies mid-stream.
func TestFreeFunctionCancellation(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-stream alignment cancellation via the store hook.
	ctx, cancel := context.WithCancel(context.Background())
	base := store.gets.Load()
	hook := func(n int64) {
		if n-base > 3 { // a few fetches in
			cancel()
		}
	}
	store.onGet.Store(&hook)
	_, _, err = Align(ctx, store, "ds", idx, AlignOptions{})
	store.onGet.Store(nil)
	cancel()
	if err == nil {
		t.Fatal("mid-stream cancelled Align succeeded")
	}

	// Fresh fixture for the downstream stages: "ds" aligned, "raw" not
	// (the distributed-align check needs an unaligned input). The genome is
	// seeded identically, so idx applies.
	store2, g2 := pipelineFixture(t, "ds", "raw")
	if _, _, err := Align(context.Background(), store2, "ds", idx, AlignOptions{}); err != nil {
		t.Fatal(err)
	}
	// Mid-sort cancellation must also clean up the spilled superchunks.
	sctx, scancel := context.WithCancel(context.Background())
	sbase := store2.gets.Load()
	shook := func(n int64) {
		if n-sbase > 4 {
			scancel()
		}
	}
	store2.onGet.Store(&shook)
	_, err = Sort(sctx, store2, "ds", ByLocation, "ds.cancelled")
	store2.onGet.Store(nil)
	scancel()
	if err == nil {
		t.Error("mid-stream cancelled Sort succeeded")
	}
	if left, _ := store2.List("ds.cancelled/tmp/"); len(left) != 0 {
		t.Errorf("cancelled Sort left spill blobs: %v", left)
	}

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Sort(dead, store2, "ds", ByLocation, ""); err == nil {
		t.Error("Sort ignored cancelled context")
	}
	if _, err := MarkDuplicates(dead, store2, "ds"); err == nil {
		t.Error("MarkDuplicates ignored cancelled context")
	}
	if _, _, err := Filter(dead, store2, "ds", FilterMappedOnly(), ""); err == nil {
		t.Error("Filter ignored cancelled context")
	}
	var buf bytes.Buffer
	if _, err := ExportSAM(dead, store2, "ds", &buf); err == nil {
		t.Error("ExportSAM ignored cancelled context")
	}
	if _, err := ExportFASTQ(dead, store2, "ds", &buf); err == nil {
		t.Error("ExportFASTQ ignored cancelled context")
	}
	if _, _, err := ImportFASTQ(dead, store2, "dead", strings.NewReader("@r\nACGT\n+\nIIII\n"), nil, 2); err == nil {
		t.Error("ImportFASTQ ignored cancelled context")
	}
	if _, err := CallVariants(dead, store2, "ds", g2); err == nil {
		t.Error("CallVariants ignored cancelled context")
	}
	if _, _, err := AlignDistributed(dead, store2, "raw", idx, 1, 1); err == nil {
		t.Error("AlignDistributed ignored cancelled context")
	}
}

// TestSessionIndexCache checks the warm-index reuse.
func TestSessionIndexCache(t *testing.T) {
	g, err := SynthesizeGenome(60_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(NewMemStore(), SessionOptions{})
	defer sess.Close()
	a, err := sess.Index(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Index(g)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("session rebuilt the index for the same genome")
	}
}

// groupStreamColumns is a compile-time-ish sanity check that the agd stream
// metadata helpers behave (used across stage packages).
func TestStreamMetaHelpers(t *testing.T) {
	m := agd.StreamMeta{Columns: []string{"bases", "qual"}}
	if m.Col("qual") != 1 || m.Col("missing") != -1 || !m.HasColumn("bases") {
		t.Fatal("StreamMeta lookups broken")
	}
	m2 := m.WithColumn("results")
	if len(m.Columns) != 2 || len(m2.Columns) != 3 || m2.Col("results") != 2 {
		t.Fatalf("WithColumn mutated or mislaid: %v %v", m.Columns, m2.Columns)
	}
}
