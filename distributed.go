package persona

import (
	"context"
	"fmt"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/cluster"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
)

// Distributed asks Run to execute the pipeline across nodes in-process
// worker nodes instead of single-node: the stage graph becomes a cluster
// plan (map/shuffle/reduce over a key-range shuffle, coordinated by a phase
// server), with every worker submitting fine-grain work to the session's
// shared executor. Output bytes are identical to the single-node run for
// any node count. nodes < 1 keeps the single-node scheduler.
//
// A distributed pipeline must have the canonical fused shape: a Read
// source, then optionally Align, then Sort (the shuffle is the sort),
// then optionally MarkDuplicates and Filter, then one sink.
func (p *Pipeline) Distributed(nodes int) *Pipeline {
	p.nodes = nodes
	return p
}

// RunDistributed plans and executes a pipeline across nodes in-process
// workers — Pipeline.Distributed + Run in one call.
func (s *Session) RunDistributed(ctx context.Context, p *Pipeline, nodes int) (*PipelineReport, error) {
	return p.Distributed(nodes).Run(ctx)
}

// distPlan translates the recorded stage graph into a cluster pipeline
// plan, rejecting shapes the distributed scheduler cannot run.
func (p *Pipeline) distPlan() (cluster.PipelinePlan, *pipeStage, error) {
	var plan cluster.PipelinePlan
	src := p.stages[0]
	if src.kind != stageRead {
		return plan, nil, fmt.Errorf("persona: distributed pipelines need a Read source, not %s", src.kind)
	}
	plan.Dataset = src.dataset
	sink := &p.stages[len(p.stages)-1]
	if !sink.kind.isSink() {
		return plan, nil, fmt.Errorf("persona: pipeline must end in a sink, not %s", sink.kind)
	}
	// The transforms must be (Align?, Sort, MarkDup?, Filter?), in order —
	// the canonical fused preprocessing graph the shuffle distributes.
	sorted := false
	pos := 0 // 0: before sort, 1: after sort, 2: after markdup, 3: after filter
	for _, st := range p.stages[1 : len(p.stages)-1] {
		switch st.kind {
		case stageAlign:
			if pos != 0 || plan.Align {
				return plan, nil, fmt.Errorf("persona: distributed pipeline: Align must come before Sort")
			}
			if st.idx == nil {
				return plan, nil, fmt.Errorf("persona: Align needs an index")
			}
			plan.Align = true
			plan.Index = st.idx
		case stageSort:
			if sorted {
				return plan, nil, fmt.Errorf("persona: distributed pipeline has two Sort stages")
			}
			sorted = true
			pos = 1
			plan.By = st.by
		case stageMarkDup:
			if pos != 1 {
				return plan, nil, fmt.Errorf("persona: distributed pipeline: MarkDuplicates must follow Sort")
			}
			pos = 2
			plan.MarkDup = true
		case stageFilter:
			if pos != 1 && pos != 2 {
				return plan, nil, fmt.Errorf("persona: distributed pipeline: Filter must follow Sort")
			}
			pos = 3
			plan.Filter = st.pred
		default:
			return plan, nil, fmt.Errorf("persona: distributed pipeline cannot run a %s stage", st.kind)
		}
	}
	if !sorted {
		return plan, nil, fmt.Errorf("persona: distributed pipeline needs a Sort stage (the shuffle is the sort)")
	}
	return plan, sink, nil
}

// runDistributed executes the pipeline as a cluster plan: the whole fused
// graph runs across worker nodes, the reduce writes an ordered output
// dataset, and an export sink streams that dataset out before its blobs are
// swept.
func (p *Pipeline) runDistributed(ctx context.Context) (*PipelineReport, error) {
	sess := p.sess
	plan, sink, err := p.distPlan()
	if err != nil {
		return nil, err
	}

	// Every blob a run writes lives under one sweepable cluster/run
	// namespace: the shuffle temp always, and the output dataset too when
	// the sink is an export (the dataset is only a staging area for the
	// export stream). A Write sink's output lives at its real name. A
	// caller-set TempPrefix (the job server's jobs/<id>/spill) relocates
	// the namespace so a job's every blob stays under its own prefix.
	runPrefix := fmt.Sprintf("cluster/run-%06d", sess.seq.Add(1))
	if p.tempPrefix != "" {
		runPrefix = fmt.Sprintf("%s/%d", p.tempPrefix, p.tmpSeq.Add(1))
	}
	plan.TempPrefix = runPrefix + "/tmp"
	if sink.kind == stageWrite {
		plan.OutName = sink.dataset
	} else {
		plan.OutName = runPrefix + "/out"
	}

	cfg := cluster.Config{
		Nodes:    p.nodes,
		Executor: sess.exec,
	}
	if plan.Align {
		for _, st := range p.stages {
			if st.kind == stageAlign {
				cfg.Aligner = snap.Config{MaxDist: st.alignOpts.MaxDist}
			}
		}
	}
	if p.distTune != nil {
		p.distTune(&cfg)
	}

	report := &PipelineReport{}
	base := p.snapshotBase()
	if sink.kind == stageWrite {
		// The run replaces whatever blobs the target dataset had.
		sess.invalidateDataset(sink.dataset)
	}
	res, err := cluster.RunPipeline(ctx, sess.store, plan, cfg)
	if err != nil {
		return nil, err
	}
	report.Cluster = res.Report
	report.Dups = res.Dups
	report.Filtered = res.Filtered
	report.Records = res.Rows

	switch sink.kind {
	case stageWrite:
		report.Manifest = res.Manifest
		sess.rememberManifest(sink.dataset, res.Manifest)
	default:
		// Export sinks: stream the stitched dataset out, then sweep the
		// whole run namespace (output chunks and manifest included).
		n, err := p.exportDistributed(ctx, res.Manifest, sink)
		if err != nil {
			return nil, err
		}
		report.Records = n
		names, err := sess.store.List(runPrefix + "/")
		if err != nil {
			return nil, fmt.Errorf("persona: list run %q: %w", runPrefix, err)
		}
		for _, name := range names {
			if err := sess.store.Delete(name); err != nil {
				return nil, fmt.Errorf("persona: sweep run %q: %w", name, err)
			}
		}
	}

	p.finishBase(report, base)
	// Coarse per-stage attribution: the cluster executes the graph as
	// phases, not as locally pumped stages, so only row counts and the
	// run-level wall are meaningful here.
	for _, name := range p.stageNames() {
		report.Stages = append(report.Stages, StageReport{Stage: name})
	}
	report.Stages[len(report.Stages)-1].Records = report.Records
	report.Stages[len(report.Stages)-1].Elapsed = report.Elapsed
	return report, nil
}

// exportDistributed streams the distributed run's stitched output dataset
// into an export sink.
func (p *Pipeline) exportDistributed(ctx context.Context, m *agd.Manifest, sink *pipeStage) (uint64, error) {
	sess := p.sess
	ds := agd.OpenManifest(sess.store, m)
	// No session cache here: the dataset is a staging area about to be
	// swept, so caching its chunks would only hold doomed entries.
	gs, err := ds.Groups(agd.StreamOptions{
		Prefetch: sess.prefetch,
		Codec:    agd.Codec{Exec: sess.exec},
	})
	if err != nil {
		return 0, err
	}
	defer gs.Close()
	switch sink.kind {
	case stageExportSAM:
		return sam.ExportStream(ctx, gs, sink.dst)
	case stageExportBAM:
		return bam.ExportStream(ctx, gs, sink.dst)
	case stageExportFASTQ:
		return fastq.ExportStream(ctx, gs, sink.dst)
	}
	return 0, fmt.Errorf("persona: %s is not an export sink", sink.kind)
}
