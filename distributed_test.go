package persona

// Distributed fused-pipeline tests: golden byte-identity between the
// single-node pumped scheduler and the cluster scheduler at every node
// count, Write-sink equivalence, degraded completion when a worker dies
// mid-shuffle, and stage-shape validation.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"persona/internal/cluster"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

// distFixture is pipelineFixture with a controllable import chunk size, so
// tests can force multi-batch map/shuffle phases (one map batch covers
// eight chunks).
func distFixture(t testing.TB, chunkSize int, names ...string) (*countingStore, *Genome) {
	t.Helper()
	g, err := SynthesizeGenome(150_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 8, N: 800, ReadLen: 80, ErrorRate: 0.003, DuplicateFraction: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	store := &countingStore{inner: NewMemStore()}
	for _, name := range names {
		if _, _, err := ImportFASTQ(context.Background(), store, name, strings.NewReader(fq.String()), RefSeqs(g), chunkSize); err != nil {
			t.Fatal(err)
		}
	}
	return store, g
}

// leakedClusterBlobs returns every blob still parked under the distributed
// scheduler's temp namespace.
func leakedClusterBlobs(t *testing.T, store *countingStore) []string {
	t.Helper()
	names, err := store.List("cluster/")
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestDistributedMatchesSingleNode is the distributed golden check: the
// full fused graph (Read → Align → Sort → MarkDup → Filter → Export) must
// produce byte-identical SAM and BAM whether it runs single-node pumped or
// distributed across 1, 2 or 4 worker nodes — and must sweep every temp
// blob it parked under cluster/.
func TestDistributedMatchesSingleNode(t *testing.T) {
	ctx := context.Background()
	store, g := distFixture(t, 50, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	build := func(out *bytes.Buffer, bam bool) *Pipeline {
		p := sess.Read("ds").
			Align(idx, AlignOptions{}).
			Sort(ByLocation).
			MarkDuplicates().
			Filter(FilterMappedOnly())
		if bam {
			return p.ExportBAM(out)
		}
		return p.ExportSAM(out)
	}

	var goldSAM, goldBAM bytes.Buffer
	goldReport, err := build(&goldSAM, false).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := build(&goldBAM, true).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if goldSAM.Len() == 0 || goldBAM.Len() == 0 {
		t.Fatal("golden run exported nothing")
	}

	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			var sam, bam bytes.Buffer
			report, err := build(&sam, false).Distributed(nodes).Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := build(&bam, true).Distributed(nodes).Run(ctx); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sam.Bytes(), goldSAM.Bytes()) {
				t.Errorf("distributed SAM differs from single-node (%d vs %d bytes)", sam.Len(), goldSAM.Len())
			}
			if !bytes.Equal(bam.Bytes(), goldBAM.Bytes()) {
				t.Errorf("distributed BAM differs from single-node (%d vs %d bytes)", bam.Len(), goldBAM.Len())
			}
			c := report.Cluster
			if c == nil {
				t.Fatal("distributed run has no cluster report")
			}
			if c.Partitions != nodes {
				t.Errorf("Partitions = %d, want %d", c.Partitions, nodes)
			}
			if len(c.Nodes) != nodes {
				t.Errorf("node reports = %d, want %d", len(c.Nodes), nodes)
			}
			if c.Degraded || c.FailedNodes != 0 {
				t.Errorf("healthy run reported degraded (failed=%d)", c.FailedNodes)
			}
			if c.ShuffleBytes <= 0 {
				t.Errorf("ShuffleBytes = %d, want > 0", c.ShuffleBytes)
			}
			if nodes > 1 && c.PartitionSkew < 1.0 {
				t.Errorf("PartitionSkew = %v, want >= 1", c.PartitionSkew)
			}
			if report.Records != goldReport.Records {
				t.Errorf("Records = %d, want %d", report.Records, goldReport.Records)
			}
			if report.Dups != goldReport.Dups {
				t.Errorf("Dups = %+v, want %+v", report.Dups, goldReport.Dups)
			}
			if report.Filtered != goldReport.Filtered {
				t.Errorf("Filtered = %+v, want %+v", report.Filtered, goldReport.Filtered)
			}
			if leaked := leakedClusterBlobs(t, store); len(leaked) != 0 {
				t.Errorf("leaked %d cluster temp blobs, e.g. %s", len(leaked), leaked[0])
			}
		})
	}
}

// TestDistributedWriteSink checks the Write sink path: a distributed run
// materializing an output dataset must hold the same record sequence as the
// single-node run's dataset (chunk boundaries may differ at partition
// edges), with the manifest remembered in the session.
func TestDistributedWriteSink(t *testing.T) {
	ctx := context.Background()
	store, g := distFixture(t, 50, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	if _, err := sess.Read("ds").Align(idx, AlignOptions{}).Sort(ByLocation).MarkDuplicates().Write("gold.out").Run(ctx); err != nil {
		t.Fatal(err)
	}
	report, err := sess.Read("ds").Align(idx, AlignOptions{}).Sort(ByLocation).MarkDuplicates().Write("dist.out").Distributed(2).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Manifest == nil {
		t.Fatal("distributed Write returned no manifest")
	}
	if report.Manifest.SortedBy != "location" {
		t.Errorf("SortedBy = %q, want location", report.Manifest.SortedBy)
	}

	var goldSAM, distSAM bytes.Buffer
	if _, err := ExportSAM(ctx, store, "gold.out", &goldSAM); err != nil {
		t.Fatal(err)
	}
	if _, err := ExportSAM(ctx, store, "dist.out", &distSAM); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(goldSAM.Bytes(), distSAM.Bytes()) {
		t.Errorf("distributed Write dataset differs from single-node (%d vs %d SAM bytes)", distSAM.Len(), goldSAM.Len())
	}
	if leaked := leakedClusterBlobs(t, store); len(leaked) != 0 {
		t.Errorf("leaked %d cluster temp blobs, e.g. %s", len(leaked), leaked[0])
	}
}

// TestDistributedWorkerDeathMidShuffle kills one of two workers on its
// first shuffle task (fixed seeds, deterministic data). The run must
// complete degraded on the survivor with byte-identical output, reassigned
// leases in the report, and zero leaked temp blobs.
func TestDistributedWorkerDeathMidShuffle(t *testing.T) {
	ctx := context.Background()
	store, g := distFixture(t, 10, "ds") // 80 chunks → 10 map/shuffle tasks
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	build := func(out *bytes.Buffer) *Pipeline {
		return sess.Read("ds").
			Align(idx, AlignOptions{}).
			Sort(ByLocation).
			MarkDuplicates().
			ExportSAM(out)
	}
	var gold bytes.Buffer
	if _, err := build(&gold).Run(ctx); err != nil {
		t.Fatal(err)
	}

	var sam bytes.Buffer
	p := build(&sam).Distributed(2)
	p.distTune = func(cfg *cluster.Config) {
		cfg.NodeFaults = map[int]int{1: 0} // node 1 dies on its first…
		cfg.FaultPhase = 1                 // …shuffle task
		cfg.HeartbeatTimeout = 200 * 1e6   // 200ms: reassign dead leases fast
	}
	report, err := p.Run(ctx)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	c := report.Cluster
	if c == nil {
		t.Fatal("no cluster report")
	}
	if !c.Degraded || c.FailedNodes != 1 {
		t.Errorf("Degraded=%v FailedNodes=%d, want degraded with 1 failed node", c.Degraded, c.FailedNodes)
	}
	if c.Reassigned == 0 {
		t.Error("Reassigned = 0, want the dead worker's leases re-dealt")
	}
	if !bytes.Equal(sam.Bytes(), gold.Bytes()) {
		t.Errorf("degraded output differs from single-node (%d vs %d bytes)", sam.Len(), gold.Len())
	}
	if leaked := leakedClusterBlobs(t, store); len(leaked) != 0 {
		t.Errorf("leaked %d cluster temp blobs, e.g. %s", len(leaked), leaked[0])
	}
}

// TestDistributedShapeValidation: the distributed scheduler accepts only
// the canonical fused shape.
func TestDistributedShapeValidation(t *testing.T) {
	ctx := context.Background()
	store, _ := pipelineFixture(t, "ds")
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	// No Sort: the shuffle is the sort, so the shape is rejected.
	var buf bytes.Buffer
	if _, err := sess.Read("ds").ExportFASTQ(&buf).Distributed(2).Run(ctx); err == nil {
		t.Error("sortless distributed pipeline did not error")
	}
	// ImportFASTQ source: distributed runs need a chunked dataset to deal.
	if _, err := sess.ImportFASTQ(strings.NewReader(""), nil, 0).Sort(ByMetadata).ExportFASTQ(&buf).Distributed(2).Run(ctx); err == nil {
		t.Error("ImportFASTQ-source distributed pipeline did not error")
	}
	// Sort(ByLocation) without alignment results is rejected by planning.
	if _, err := sess.Read("ds").Sort(ByLocation).ExportFASTQ(&buf).Distributed(2).Run(ctx); err == nil {
		t.Error("location sort of unaligned dataset did not error")
	}
}

// TestDistributedMetadataSort covers the ByMetadata key (full-bytes
// tiebreaks cross the wire inside samples) without alignment: Read → Sort →
// ExportFASTQ, distributed vs single-node.
func TestDistributedMetadataSort(t *testing.T) {
	ctx := context.Background()
	store, _ := distFixture(t, 50, "ds")
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	var gold, dist bytes.Buffer
	if _, err := sess.Read("ds").Sort(ByMetadata).ExportFASTQ(&gold).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Read("ds").Sort(ByMetadata).ExportFASTQ(&dist).Distributed(3).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gold.Bytes(), dist.Bytes()) {
		t.Errorf("metadata-sorted FASTQ differs (%d vs %d bytes)", dist.Len(), gold.Len())
	}
}
